"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.seed == 2013
        assert not args.simulate


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "(k+a*L, L)-HiNet" in out
        assert "4320" in out

    def test_table2_custom_params(self, capsys):
        main(["table2", "--n0", "50", "--theta", "10", "--nm", "20",
              "--k", "4", "--alpha", "2"])
        out = capsys.readouterr().out
        assert "1-interval connected [7]" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "180" in out and "-960" in out

    def test_table3_simulated(self, capsys):
        assert main(["--seed", "2013", "table3", "--simulate", "--n0", "50"]) == 0
        out = capsys.readouterr().out
        assert "measured_comm" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "cluster 0" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "lattice" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "token 0 starts at member" in capsys.readouterr().out

    def test_sweep_n_small(self, capsys):
        assert main(["sweep-n", "--sizes", "40", "60", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "comm_ratio" in out

    def test_sweep_nr_small(self, capsys):
        assert main(["sweep-nr", "--ps", "0.0", "0.5", "--n0", "30",
                     "--theta", "9"]) == 0
        assert "empirical_nr" in capsys.readouterr().out

    def test_ablation_small(self, capsys):
        assert main(["ablation", "--alphas", "2", "--Ls", "2"]) == 0
        assert "alg1_stable_comm" in capsys.readouterr().out

    def test_mobility_small(self, capsys):
        assert main(["mobility", "--nodes", "20", "--rounds", "25",
                     "--radius", "70"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 2 (HiNet)" in out

    def test_count_hierarchical(self, capsys):
        assert main(["count", "--n0", "16"]) == 0
        out = capsys.readouterr().out
        assert "exact=True" in out

    def test_count_kcommittee(self, capsys):
        assert main(["count", "--n0", "10", "--method", "kcommittee"]) == 0
        out = capsys.readouterr().out
        assert "accepted at k=" in out

    def test_pareto(self, capsys):
        assert main(["pareto", "--n0", "24", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "frontier:" in out
        assert "Algorithm 2" in out


class TestRegistryCommands:
    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("algorithm1", "algorithm2", "klo-interval", "gossip",
                     "dhop-dissemination"):
            assert name in out, name
        assert "guaranteed" in out and "best-effort" in out

    def test_list_algorithms_envelope_columns(self, capsys):
        """Satellite: phase_length / alpha / bound columns from the
        symbolic cost model."""
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        for column in ("phase_length", "alpha", "bound"):
            assert column in out, column
        assert "theorem: n - 1" in out  # algorithm2's closed-form bound
        assert "horizon: R" in out  # best-effort specs measure a window

    def test_validate_model_sweeps_registry(self, capsys, tmp_path):
        ratios = tmp_path / "ratios.json"
        assert main(["validate-model", "--n0", "24", "--k", "3",
                     "--json", str(ratios)]) == 0
        out = capsys.readouterr().out
        assert "every benign-family case inside its Table 2 envelope" in out
        assert "algorithm1" in out and "tokens_ratio" in out
        from repro.io import load_ratio_table

        rows = load_ratio_table(ratios)
        assert rows and all(row["within"] is True for row in rows)

    def test_validate_model_markdown_and_subset(self, capsys):
        assert main(["validate-model", "--n0", "24", "--k", "3",
                     "--algorithms", "algorithm1", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n| algorithm1 |") == 1 or "| algorithm1" in out

    def test_run_auto_scenario(self, capsys):
        assert main(["run", "algorithm1", "--n0", "24", "--theta", "7",
                     "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1 (HiNet)" in out
        assert "HiNet n=24" in out  # auto-picked the (T, L)-HiNet scenario
        assert "messages_sent" in out

    def test_run_explicit_scenario_and_rounds(self, capsys):
        assert main(["run", "flood-all", "--scenario", "one-interval",
                     "--n0", "20", "--k", "3", "--rounds", "19"]) == 0
        out = capsys.readouterr().out
        assert "Flood (all)" in out

    def test_run_seeded_algorithm_reproducible(self, capsys):
        assert main(["--seed", "11", "run", "gossip", "--n0", "20",
                     "--k", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "11", "run", "gossip", "--n0", "20",
                     "--k", "3"]) == 0
        assert capsys.readouterr().out == first

    def test_run_unknown_algorithm_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "bogus"])

    def test_run_with_cache_replays(self, capsys, tmp_path):
        argv = ["run", "algorithm2", "--n0", "20", "--k", "3",
                "--cache", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("*/*.json"))  # cached on disk
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_run_events_jsonl_cross_checks(self, capsys, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        assert main(["run", "algorithm2", "--n0", "20", "--k", "3",
                     "--events", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"events to {path}" in out
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["type"] == "run" and rows[0]["algorithm"]
        assert rows[-1]["type"] == "summary"
        rounds = [r for r in rows if r["type"] == "round"]
        assert len(rounds) == rows[-1]["rounds"]
        # final timeline rows must match the run's Metrics totals
        assert sum(r["tokens"] for r in rounds) == rows[-1]["tokens_sent"]
        assert sum(r["messages"] for r in rounds) == rows[-1]["messages_sent"]

    def test_run_events_with_obs_off_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="obs off"):
            main(["run", "algorithm2", "--n0", "20", "--k", "3",
                  "--obs", "off", "--events", str(tmp_path / "e.jsonl")])

    def test_run_live_with_obs_off_exits(self):
        with pytest.raises(SystemExit, match="obs off"):
            main(["run", "algorithm2", "--n0", "20", "--k", "3",
                  "--obs", "off", "--live"])

    def test_run_live_non_tty_dashboard(self, capsys):
        assert main(["run", "algorithm2", "--n0", "20", "--k", "3",
                     "--live"]) == 0
        captured = capsys.readouterr()
        assert "summary: rounds=" in captured.err  # dashboard on stderr
        assert "\x1b[" not in captured.err  # non-TTY: plain lines, no ANSI
        assert "Algorithm 2" in captured.out  # result table untouched

    def test_run_metrics_out_writes_textfile(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(["run", "algorithm2", "--n0", "20", "--k", "3",
                     "--metrics-out", str(path)]) == 0
        assert f"metrics textfile at {path}" in capsys.readouterr().out
        text = path.read_text()
        assert "# TYPE repro_rounds_total counter" in text
        assert "repro_run_complete" in text and " 1" in text

    def test_run_stream_decimate_thins_rounds(self, capsys, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        assert main(["run", "algorithm2", "--n0", "20", "--k", "3",
                     "--events", str(path), "--stream-decimate", "5"]) == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        rounds = [r["round"] for r in rows if r["type"] == "round"]
        total = rows[-1]["rounds"]
        assert rounds[-1] == total - 1  # final round always published
        assert all(r % 5 == 0 for r in rounds[:-1])
        assert len(rounds) < total

    def test_watch_replays_events_file(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["run", "algorithm2", "--n0", "20", "--k", "3",
                     "--events", str(path)]) == 0
        capsys.readouterr()
        assert main(["watch", str(path)]) == 0
        out = capsys.readouterr().out
        assert "summary: rounds=" in out
        assert f"events from {path} (complete)" in out

    def test_watch_partial_file_reports_partial(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["run", "algorithm2", "--n0", "20", "--k", "3",
                     "--events", str(path)]) == 0
        capsys.readouterr()
        lines = path.read_text().splitlines()
        truncated = tmp_path / "partial.jsonl"
        truncated.write_text("\n".join(lines[:4]) + "\n")
        assert main(["watch", str(truncated)]) == 0
        out = capsys.readouterr().out
        assert "(partial)" in out

    def test_watch_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["watch", str(tmp_path / "nope.jsonl")])

    def test_watch_rejects_non_events_file(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "round", "round": 0}\n')
        with pytest.raises(SystemExit, match="run"):
            main(["watch", str(bogus)])

    def test_profile_prints_sections_and_phases(self, capsys):
        assert main(["profile", "algorithm1", "--n0", "24", "--theta", "7",
                     "--k", "3"]) == 0
        out = capsys.readouterr().out
        for section in ("scenario_build", "property_checks", "round_loop",
                        "send", "topology"):
            assert section in out, section
        assert "per-phase breakdown" in out
        assert "head_msgs" in out and "gateway_msgs" in out

    def test_profile_reference_engine(self, capsys):
        assert main(["profile", "flood-all", "--scenario", "one-interval",
                     "--n0", "16", "--k", "3", "--engine", "reference"]) == 0
        out = capsys.readouterr().out
        assert "deliver" in out  # reference-only section
        assert "flat_msgs" in out

    def test_sweep_accepts_cache_flag(self, capsys, tmp_path):
        assert main(["sweep-nr", "--ps", "0.0", "--n0", "20", "--theta", "6",
                     "--cache", str(tmp_path)]) == 0
        assert "empirical_nr" in capsys.readouterr().out
        assert list(tmp_path.glob("*/*.json"))


class TestRecordReplayDiff:
    def _record(self, tmp_path, name="rec.json", extra=()):
        path = tmp_path / name
        argv = ["record", "algorithm1", "--n0", "24", "--theta", "7",
                "--k", "3", "--out", str(path), *extra]
        assert main(argv) == 0
        return path

    def test_record_writes_recording(self, capsys, tmp_path):
        path = self._record(tmp_path)
        out = capsys.readouterr().out
        assert "fingerprint" in out and str(path) in out
        assert path.is_file()
        from repro.io import load_recording

        rec = load_recording(path)
        assert rec.rounds_recorded > 0
        assert rec.meta["algorithm"] == "algorithm1"

    def test_record_engines_agree(self, capsys, tmp_path):
        self._record(tmp_path, "fast.json")
        fast_out = capsys.readouterr().out
        self._record(tmp_path, "ref.json", extra=["--engine", "reference"])
        ref_out = capsys.readouterr().out
        fingerprint = [l for l in fast_out.splitlines() if "fingerprint" in l]
        assert fingerprint and fingerprint[0].split()[-1] in ref_out

    def test_record_chrome_export(self, capsys, tmp_path):
        import json

        chrome = tmp_path / "trace.json"
        self._record(tmp_path, extra=["--chrome", str(chrome)])
        assert "chrome://tracing" in capsys.readouterr().out
        trace = json.loads(chrome.read_text())
        events = trace["traceEvents"]
        assert events == sorted(events, key=lambda e: e["ts"])
        assert all({"name", "ph", "ts", "pid", "tid"} <= set(e)
                   for e in events)

    def test_replay_overview(self, capsys, tmp_path):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "round" in out and "coverage" in out

    def test_replay_time_travel_to_node(self, capsys, tmp_path):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["replay", str(path), "--at", "5", "--node", "3"]) == 0
        out = capsys.readouterr().out
        assert "node 3 at end of round 5" in out

    def test_replay_missing_file_exits_readably(self, tmp_path):
        with pytest.raises(SystemExit, match="recording file not found"):
            main(["replay", str(tmp_path / "nope.json")])

    def test_replay_corrupt_file_exits_readably(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="could not read recording"):
            main(["replay", str(bad)])

    def test_replay_at_out_of_range_exits(self, tmp_path):
        path = self._record(tmp_path)
        with pytest.raises(SystemExit, match="outside recorded range"):
            main(["replay", str(path), "--at", "100000"])

    def test_diff_identical_recordings(self, capsys, tmp_path):
        a = self._record(tmp_path, "a.json")
        b = self._record(tmp_path, "b.json", extra=["--engine", "reference"])
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        assert "recordings identical" in capsys.readouterr().out

    def test_diff_engines_mode(self, capsys, tmp_path):
        assert main(["diff", "--engines", "algorithm1", "--n0", "24",
                     "--theta", "7", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "recordings identical" in out and "fast" in out

    def test_diff_divergent_exits_one_and_writes_report(self, capsys,
                                                        tmp_path,
                                                        monkeypatch):
        from repro.sim.fastpath import FAULT_ENV_VAR

        a = self._record(tmp_path, "good.json")
        monkeypatch.setenv(FAULT_ENV_VAR, "2:1:0")
        b = self._record(tmp_path, "faulty.json")
        monkeypatch.delenv(FAULT_ENV_VAR)
        capsys.readouterr()
        report = tmp_path / "report.txt"
        assert main(["diff", str(a), str(b), "--report", str(report)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out and "first diverging round: 2" in out
        assert "DIVERGENCE" in report.read_text()

    def test_diff_mismatched_scenarios_exits_readably(self, capsys, tmp_path):
        a = self._record(tmp_path, "a.json")
        big = tmp_path / "big.json"
        assert main(["record", "algorithm1", "--n0", "30", "--theta", "7",
                     "--k", "3", "--out", str(big)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="not comparable"):
            main(["diff", str(a), str(big)])

    def test_diff_missing_file_exits_readably(self, tmp_path):
        a = self._record(tmp_path)
        with pytest.raises(SystemExit, match="recording file not found"):
            main(["diff", str(a), str(tmp_path / "absent.json")])

    def test_diff_needs_two_files(self, tmp_path):
        a = self._record(tmp_path)
        with pytest.raises(SystemExit, match="exactly two"):
            main(["diff", str(a)])

    def test_diff_rejects_files_plus_engines(self, tmp_path):
        a = self._record(tmp_path)
        with pytest.raises(SystemExit):
            main(["diff", str(a), str(a), "--engines", "algorithm1"])
