"""Unit tests for repro.sim.messages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.messages import (
    Delivery,
    Message,
    TokenDomain,
    initial_assignment,
    token_range,
)
from repro.sim.rng import make_rng


class TestTokenRange:
    def test_basic(self):
        assert token_range(3) == frozenset({0, 1, 2})

    def test_empty(self):
        assert token_range(0) == frozenset()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            token_range(-1)


class TestMessage:
    def test_broadcast_constructor(self):
        m = Message.broadcast(2, [1, 3])
        assert m.delivery is Delivery.BROADCAST
        assert m.tokens == frozenset({1, 3})
        assert m.dest is None

    def test_unicast_constructor(self):
        m = Message.unicast(2, 5, [0])
        assert m.delivery is Delivery.UNICAST
        assert m.dest == 5

    def test_cost_is_token_count(self):
        assert Message.broadcast(0, [1, 2, 3]).cost == 3
        assert Message.broadcast(0, []).cost == 0

    def test_payload_cost_added(self):
        m = Message(sender=0, tokens=frozenset(), payload=0b101, payload_cost=1)
        assert m.cost == 1

    def test_payload_requires_cost(self):
        with pytest.raises(ValueError):
            Message(sender=0, tokens=frozenset(), payload=7)

    def test_negative_payload_cost_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=0, tokens=frozenset({1}), payload_cost=-1)

    def test_unicast_without_dest_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=0, tokens=frozenset({1}), delivery=Delivery.UNICAST)

    def test_broadcast_with_dest_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=0, tokens=frozenset({1}), dest=3)

    def test_tokens_coerced_to_frozenset(self):
        m = Message(sender=0, tokens={1, 2})
        assert isinstance(m.tokens, frozenset)


class TestTokenDomain:
    def test_roundtrip(self):
        dom = TokenDomain.from_items(["a", "b", "c"])
        assert dom.k == 3
        assert dom.payload(1) == "b"
        assert dom.token_id("c") == 2

    def test_add_idempotent(self):
        dom = TokenDomain()
        assert dom.add("x") == dom.add("x") == 0
        assert dom.k == 1

    def test_decode_sorted(self):
        dom = TokenDomain.from_items(["a", "b", "c"])
        assert dom.decode({2, 0}) == ["a", "c"]


class TestInitialAssignment:
    def test_spread_covers_all_tokens(self):
        asg = initial_assignment(5, 3, mode="spread")
        union = frozenset().union(*asg.values())
        assert union == token_range(5)

    def test_spread_deterministic_layout(self):
        asg = initial_assignment(4, 2, mode="spread")
        assert asg[0] == frozenset({0, 2})
        assert asg[1] == frozenset({1, 3})

    def test_single_mode(self):
        asg = initial_assignment(3, 10, mode="single")
        assert asg == {0: frozenset({0, 1, 2})}

    def test_single_mode_zero_tokens(self):
        assert initial_assignment(0, 10, mode="single") == {}

    def test_random_mode_covers_and_reproduces(self):
        a = initial_assignment(6, 4, rng=make_rng(1), mode="random")
        b = initial_assignment(6, 4, rng=make_rng(1), mode="random")
        assert a == b
        assert frozenset().union(*a.values()) == token_range(6)

    def test_random_mode_needs_rng(self):
        with pytest.raises(ValueError):
            initial_assignment(2, 2, mode="random")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            initial_assignment(2, 2, mode="bogus")

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            initial_assignment(2, 0)

    @given(k=st.integers(0, 40), n=st.integers(1, 30))
    def test_spread_partition_property(self, k, n):
        """Spread assignment partitions the token universe exactly."""
        asg = initial_assignment(k, n, mode="spread")
        seen = []
        for toks in asg.values():
            seen.extend(toks)
        assert sorted(seen) == list(range(k))
