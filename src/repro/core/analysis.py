"""The paper's analytical cost model (Section V, Tables 2 and 3).

Time cost is in rounds; communication cost is total tokens sent.  The
eight closed forms below are transcribed exactly from Table 2:

====================================  ==============================  =========================================
Model                                  Time (rounds)                   Communication (tokens)
====================================  ==============================  =========================================
(k+αL)-interval connected, KLO [7]     ⌈n₀/(αL)⌉·(k+αL)                ⌈n₀/(2α)⌉·n₀·k
(k+αL, L)-HiNet, Algorithm 1           (⌈θ/α⌉+1)·(k+αL)                (⌈θ/α⌉+1)·(n₀−n_m)·k + n_m·n_r·k
1-interval connected, KLO [7]          n₀−1                            (n₀−1)·n₀·k
(1, L)-HiNet, Algorithm 2              n₀−1                            (n₀−1)·(n₀−n_m)·k + n_m·n_r·k
====================================  ==============================  =========================================

Note on Table 3: with the paper's own parameters (n₀=100, θ=30, n_m=40,
n_r=10, k=8) the (1, L)-HiNet formula evaluates to 50 720 tokens, while
the paper prints 51 680 — an arithmetic slip of 960 in the original (the
other three rows reproduce exactly).  :data:`TABLE3_PAPER` records the
published values; :func:`table3` returns the formula evaluations.  See
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import ceil
from typing import Dict, List

__all__ = [
    "CostParams",
    "TABLE3_PAPER",
    "TABLE3_PARAMS",
    "hinet_interval_comm",
    "hinet_interval_time",
    "hinet_one_comm",
    "hinet_one_time",
    "klo_interval_comm",
    "klo_interval_time",
    "klo_one_comm",
    "klo_one_time",
    "table2",
    "table3",
]


@dataclass(frozen=True)
class CostParams:
    """The Table 1 notation as a parameter record.

    Attributes
    ----------
    n0:
        Total number of nodes.
    theta:
        Upper bound on the number of nodes that can be cluster heads.
    nm:
        Average number of plain cluster members per round.
    nr:
        Average number of re-affiliations a member conducts.
    k:
        Number of tokens to disseminate.
    alpha:
        The free positive-integer coefficient α (speed/stability trade-off).
    L:
        Cluster-head hop bound.
    """

    n0: int
    theta: int
    nm: float
    nr: float
    k: int
    alpha: int = 1
    L: int = 2

    def __post_init__(self) -> None:
        if self.n0 < 1:
            raise ValueError(f"n0 must be >= 1, got {self.n0}")
        if not (0 <= self.theta <= self.n0):
            raise ValueError(f"need 0 <= theta <= n0, got theta={self.theta}")
        if self.nm < 0 or self.nm > self.n0:
            raise ValueError(f"need 0 <= nm <= n0, got nm={self.nm}")
        if self.nr < 0:
            raise ValueError(f"nr must be >= 0, got {self.nr}")
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.alpha < 1:
            raise ValueError(f"alpha must be a positive integer, got {self.alpha}")
        if self.L < 1:
            raise ValueError(f"L must be >= 1, got {self.L}")

    @property
    def interval_T(self) -> int:
        """The stability interval ``k + α·L`` both interval-model rows assume."""
        return self.k + self.alpha * self.L


# --- row 1: KLO under (k+αL)-interval connectivity --------------------------

def klo_interval_time(p: CostParams) -> int:
    """⌈n₀/(αL)⌉ · (k + αL) rounds."""
    return ceil(p.n0 / (p.alpha * p.L)) * p.interval_T


def klo_interval_comm(p: CostParams) -> int:
    """⌈n₀/(2α)⌉ · n₀ · k tokens."""
    return ceil(p.n0 / (2 * p.alpha)) * p.n0 * p.k


# --- row 2: Algorithm 1 on a (k+αL, L)-HiNet --------------------------------

def hinet_interval_time(p: CostParams) -> int:
    """(⌈θ/α⌉ + 1) · (k + αL) rounds."""
    return (ceil(p.theta / p.alpha) + 1) * p.interval_T


def hinet_interval_comm(p: CostParams) -> float:
    """(⌈θ/α⌉ + 1)(n₀ − n_m)·k + n_m·n_r·k tokens."""
    phases = ceil(p.theta / p.alpha) + 1
    return phases * (p.n0 - p.nm) * p.k + p.nm * p.nr * p.k


# --- row 3: KLO under 1-interval connectivity --------------------------------

def klo_one_time(p: CostParams) -> int:
    """n₀ − 1 rounds."""
    return p.n0 - 1


def klo_one_comm(p: CostParams) -> int:
    """(n₀ − 1) · n₀ · k tokens."""
    return (p.n0 - 1) * p.n0 * p.k


# --- row 4: Algorithm 2 on a (1, L)-HiNet -------------------------------------

def hinet_one_time(p: CostParams) -> int:
    """n₀ − 1 rounds."""
    return p.n0 - 1


def hinet_one_comm(p: CostParams) -> float:
    """(n₀ − 1)(n₀ − n_m)·k + n_m·n_r·k tokens."""
    return (p.n0 - 1) * (p.n0 - p.nm) * p.k + p.nm * p.nr * p.k


# --- tables --------------------------------------------------------------------

#: Row labels in the paper's order.
_ROWS = (
    ("(k+a*L)-interval connected [7]", klo_interval_time, klo_interval_comm),
    ("(k+a*L, L)-HiNet", hinet_interval_time, hinet_interval_comm),
    ("1-interval connected [7]", klo_one_time, klo_one_comm),
    ("(1, L)-HiNet", hinet_one_time, hinet_one_comm),
)


def table2(p: CostParams, p_one: CostParams | None = None) -> List[Dict[str, object]]:
    """Evaluate all four Table 2 rows.

    ``p`` parameterises the two interval-model rows; ``p_one`` (default:
    same as ``p``) the two 1-interval rows — the paper's Table 3 uses a
    higher re-affiliation rate for the (1, L) case, since higher dynamics
    mean more cluster switches.
    """
    q = p if p_one is None else p_one
    rows = []
    for (label, time_fn, comm_fn), params in zip(_ROWS, (p, p, q, q)):
        rows.append(
            {
                "model": label,
                "time_rounds": time_fn(params),
                "comm_tokens": comm_fn(params),
            }
        )
    return rows


#: Table 3's exact published parameterisation.
TABLE3_PARAMS = CostParams(n0=100, theta=30, nm=40, nr=3, k=8, alpha=5, L=2)
#: The (1, L) rows use n_r = 10 ("re-affiliations should occur more times").
TABLE3_PARAMS_ONE = replace(TABLE3_PARAMS, nr=10)

#: Values as printed in the paper, including its (1, L)-HiNet arithmetic slip.
TABLE3_PAPER: Dict[str, Dict[str, int]] = {
    "(k+a*L)-interval connected [7]": {"time_rounds": 180, "comm_tokens": 8000},
    "(k+a*L, L)-HiNet": {"time_rounds": 126, "comm_tokens": 4320},
    "1-interval connected [7]": {"time_rounds": 99, "comm_tokens": 79200},
    "(1, L)-HiNet": {"time_rounds": 99, "comm_tokens": 51680},
}


def table3() -> List[Dict[str, object]]:
    """Table 3 re-evaluated from the Table 2 formulas.

    Matches :data:`TABLE3_PAPER` exactly on three rows; the fourth differs
    by the paper's 960-token arithmetic slip (we compute 50 720).
    """
    return table2(TABLE3_PARAMS, TABLE3_PARAMS_ONE)
