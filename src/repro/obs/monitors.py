"""Runtime invariant monitors: theorem assumptions checked round-by-round.

The theorems behind the repo's "guaranteed" algorithms are conditional —
Theorem 1 holds *because* every stable head learns ≥ α fresh tokens per
phase *because* the trace really is a (T, L)-HiNet.  A run on a scenario
that silently violates those assumptions does not fail; it just produces
a wrong (incomplete) answer.  Monitors watch a live run and turn broken
assumptions into structured :class:`Violation` diagnostics with enough
round/phase/node context to explain *where* the argument first cracked.

A :class:`Monitor` receives one :class:`RoundView` per executed round —
built identically by both engines (the fast path converts its bitset
popcounts to the same plain-int lists), so the violation stream joins the
fastpath⇄reference equivalence guarantee — and may emit more violations
in :meth:`Monitor.finish` once the run's outcome is known.

Built-in monitors (assembled per algorithm by :func:`default_monitors`):

* :class:`CoverageMonotonicityMonitor` — global (node, token) coverage
  never decreases (token-dissemination state is absorb-only);
* :class:`HeadProgressMonitor` — Theorem 1's per-phase progress: every
  head that stays head through a full phase either completes or gains at
  least ``min(α, k − held)`` fresh tokens that phase;
* :class:`BudgetMonitor` — a guaranteed algorithm finishes inside its
  :class:`~repro.registry.RunPlan` round budget;
* :class:`StabilityMonitor` — the declared (T, L) model properties
  actually persist: hierarchy constant per T-block, members adjacent to
  their heads, and each block's head backbone connected within L hops;
* :class:`EnvelopeMonitor` — the run's cumulative transmission/token
  counters stay inside the analytical envelope
  :func:`repro.analysis.predict` evaluated for this (scenario, plan)
  pair, checked live every round (the counters are monotone, so any
  mid-run excursion already refutes the end-of-run bound).

Surface: ``repro run --monitor``, ``execute(..., monitor=True)``, and the
nightly equivalence workflow (``REPRO_EQUIV_MONITORS=1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "BudgetMonitor",
    "CoverageMonotonicityMonitor",
    "EnvelopeMonitor",
    "HeadProgressMonitor",
    "Monitor",
    "RoundView",
    "StabilityMonitor",
    "Violation",
    "default_monitors",
]


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach.

    ``round`` is the round at which the breach was observed (−1 for
    end-of-run checks); ``context`` carries the monitor's structured
    diagnosis (phase index, offending nodes, expected vs. observed …).
    """

    monitor: str
    round: int
    message: str
    context: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        where = "end of run" if self.round < 0 else f"round {self.round}"
        return f"[{self.monitor}] {where}: {self.message}"


class RoundView:
    """What a monitor may inspect after one executed round.

    Both engines construct identical views: the topology snapshot the
    round ran on, end-of-round coverage / completion counters, and the
    per-node token counts (plain ints, so fastpath bitset popcounts and
    reference ``len(TA)`` compare equal).

    When the run has a :class:`~repro.sim.linkmodel.LinkModel` attached,
    ``faults`` is a dict describing this round's fault activity —
    ``{"crashed": (node ids…), "crash_tokens": int, "lost": int}`` — so
    monitors can *diagnose* fault-induced anomalies instead of flagging
    them as algorithm bugs.  ``None`` on benign runs.
    """

    __slots__ = ("round_index", "snap", "coverage", "nodes_complete",
                 "per_node", "n", "k", "faults", "tokens_sent",
                 "messages_sent")

    def __init__(self, round_index: int, snap, coverage: int,
                 nodes_complete: int, per_node: Sequence[int],
                 n: int, k: int, faults: Optional[Mapping[str, object]] = None,
                 tokens_sent: Optional[int] = None,
                 messages_sent: Optional[int] = None,
                 ) -> None:
        self.round_index = round_index
        self.snap = snap
        self.coverage = coverage
        self.nodes_complete = nodes_complete
        self.per_node = per_node
        self.n = n
        self.k = k
        self.faults = faults
        # Cumulative run counters at end of round (None when the engine
        # does not surface them — the envelope monitor then stays idle).
        self.tokens_sent = tokens_sent
        self.messages_sent = messages_sent


class Monitor:
    """Base class: collect :class:`Violation` objects over a run."""

    name = "monitor"

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def observe(self, view: RoundView) -> None:
        """Inspect one executed round."""
        raise NotImplementedError

    def finish(self, rounds: int, complete: bool) -> None:
        """Run ended after ``rounds`` rounds with final completeness."""

    def emit(self, round_index: int, message: str, **context: object) -> None:
        self.violations.append(
            Violation(monitor=self.name, round=round_index, message=message,
                      context=context)
        )


class CoverageMonotonicityMonitor(Monitor):
    """Coverage is non-decreasing: dissemination state is absorb-only.

    Under crash-stop churn a coverage drop is *expected* — a crashed
    node's tokens leave the count.  When the round's
    :attr:`RoundView.faults` shows crashes that account for the whole
    drop, the monitor stays silent; a drop that exceeds what the crashes
    wiped is still flagged, with the churn contribution in the diagnosis.
    """

    name = "coverage-monotonicity"

    def __init__(self) -> None:
        super().__init__()
        self._prev: Optional[int] = None

    def observe(self, view: RoundView) -> None:
        if self._prev is not None and view.coverage < self._prev:
            drop = self._prev - view.coverage
            faults = view.faults or {}
            crashed = tuple(faults.get("crashed", ()))
            crash_tokens = int(faults.get("crash_tokens", 0))
            if crashed and drop <= crash_tokens:
                pass  # fully explained by churn: crashed nodes' tokens left
            elif crashed:
                self.emit(
                    view.round_index,
                    f"coverage dropped {self._prev} -> {view.coverage}; "
                    f"crashes wiped only {crash_tokens} of the {drop} "
                    f"missing (node, token) pairs",
                    previous=self._prev, coverage=view.coverage,
                    crashed=crashed, crash_tokens=crash_tokens,
                )
            else:
                self.emit(
                    view.round_index,
                    f"coverage dropped {self._prev} -> {view.coverage}",
                    previous=self._prev, coverage=view.coverage,
                )
        self._prev = view.coverage


class HeadProgressMonitor(Monitor):
    """Theorem 1's per-phase progress argument, checked per phase.

    At the end of every *full* phase of ``T`` rounds, each node that was
    a cluster head in every round of the phase must have gained at least
    ``min(α, k − held_at_phase_start)`` tokens.  This is Lemma-level
    machinery behind the ``⌈θ/α⌉ + 1`` bound: a violation means the
    backbone failed to feed some stable head fast enough — the bound no
    longer follows.
    """

    name = "head-progress"

    def __init__(self, T: int, alpha: int) -> None:
        super().__init__()
        if T < 1 or alpha < 1:
            raise ValueError(f"T and alpha must be >= 1, got T={T}, alpha={alpha}")
        self.T = T
        self.alpha = alpha
        self._stable: Optional[frozenset] = None
        self._start_counts: Dict[int, int] = {}

    def observe(self, view: RoundView) -> None:
        r = view.round_index
        heads = view.snap.heads() if view.snap.clustered else frozenset()
        if r % self.T == 0:
            self._stable = heads
            self._start_counts = {v: view.per_node[v] for v in heads}
        elif self._stable is not None:
            self._stable = self._stable & heads
        if r % self.T == self.T - 1 and self._stable is not None:
            phase = r // self.T
            for v in sorted(self._stable):
                start = self._start_counts.get(v, 0)
                need = min(self.alpha, view.k - start)
                gained = view.per_node[v] - start
                if gained < need:
                    self.emit(
                        r,
                        f"stable head {v} gained {gained} < {need} tokens "
                        f"in phase {phase}",
                        head=v, phase=phase, start=start,
                        end=view.per_node[v], needed=need, alpha=self.alpha,
                    )
            self._stable = None


class BudgetMonitor(Monitor):
    """A guaranteed algorithm must finish within its planned round budget."""

    name = "round-budget"

    def __init__(self, budget: int) -> None:
        super().__init__()
        self.budget = budget

    def observe(self, view: RoundView) -> None:
        pass

    def finish(self, rounds: int, complete: bool) -> None:
        if rounds > self.budget:
            self.emit(-1, f"ran {rounds} rounds, over the {self.budget}-round budget",
                      rounds=rounds, budget=self.budget)
        elif not complete and rounds >= self.budget:
            self.emit(
                -1,
                f"incomplete after the full {self.budget}-round budget "
                "(guarantee violated — check the model assumptions)",
                rounds=rounds, budget=self.budget,
            )


class EnvelopeMonitor(Monitor):
    """The measured trajectory stays inside the analytical envelope.

    Bounds come from :func:`repro.analysis.predict` evaluated on the
    run's own (scenario, plan) pair — Table 2's claims turned into live
    assertions.  Because ``rounds``/``messages_sent``/``tokens_sent``
    are all monotone over a run, the end-of-run upper bound is a valid
    check against the cumulative counters at *every* round: the first
    excursion is flagged (once per metric) with the measured value and
    the violated bound in the diagnosis.

    ``finish`` additionally flags a guaranteed algorithm that was still
    incomplete when its theorem-bound budget elapsed — the regime where
    Table 2's round count no longer explains the run.
    """

    name = "analytical-envelope"

    def __init__(self, rounds_bound: int,
                 messages_bound: Optional[int] = None,
                 tokens_bound: Optional[int] = None,
                 guaranteed: bool = False) -> None:
        super().__init__()
        if rounds_bound < 1:
            raise ValueError(f"rounds_bound must be >= 1, got {rounds_bound}")
        self.rounds_bound = rounds_bound
        self.messages_bound = messages_bound
        self.tokens_bound = tokens_bound
        self.guaranteed = guaranteed
        self._flagged: set = set()

    def _check(self, view: RoundView, metric: str, measured: Optional[int],
               bound: Optional[int]) -> None:
        if bound is None or measured is None or metric in self._flagged:
            return
        if measured > bound:
            self._flagged.add(metric)
            self.emit(
                view.round_index,
                f"cumulative {metric} {measured} exceeded the analytical "
                f"bound {bound}",
                metric=metric, measured=measured, bound=bound,
            )

    def observe(self, view: RoundView) -> None:
        self._check(view, "rounds", view.round_index + 1, self.rounds_bound)
        self._check(view, "messages", view.messages_sent, self.messages_bound)
        self._check(view, "tokens", view.tokens_sent, self.tokens_bound)

    def finish(self, rounds: int, complete: bool) -> None:
        if rounds > self.rounds_bound and "rounds" not in self._flagged:
            self._flagged.add("rounds")
            self.emit(-1, f"ran {rounds} rounds, over the analytical bound "
                      f"{self.rounds_bound}",
                      metric="rounds", measured=rounds,
                      bound=self.rounds_bound)
        if self.guaranteed and not complete and rounds >= self.rounds_bound:
            self.emit(
                -1,
                f"incomplete after the analytical {self.rounds_bound}-round "
                "envelope (theorem bound does not explain this run)",
                metric="completion", measured=rounds,
                bound=self.rounds_bound,
            )


class StabilityMonitor(Monitor):
    """The declared (T, L) stability properties, verified as the run unfolds.

    Per round: the hierarchy (roles + affiliations) must match the start
    of its T-block (Definition 4) and every affiliated member must be
    adjacent to its head (the CTVG invariant the unicast upload relies
    on).  Per completed T-block: the block must admit a stable connected
    head backbone with hop bound ≤ L (Definitions 5–7), checked with the
    same :mod:`repro.graphs.properties` machinery the offline verifiers
    use.
    """

    name = "stability"

    def __init__(self, T: int, L: int, member_adjacency: bool = True) -> None:
        super().__init__()
        if T < 1 or L < 0:
            raise ValueError(f"need T >= 1 and L >= 0, got T={T}, L={L}")
        self.T = T
        self.L = L
        # The d-hop extension deliberately places members up to d hops
        # from their head, so adjacency is only an invariant for d = 1.
        self.member_adjacency = member_adjacency
        self._window: List[object] = []
        self._window_key = None
        self._hierarchy_broken = False
        self._adjacency_broken = False

    @staticmethod
    def _hierarchy_key(snap):
        if not snap.clustered:
            return None
        return (tuple(snap.roles), tuple(snap.head_of))

    def observe(self, view: RoundView) -> None:
        snap = view.snap
        r = view.round_index
        if r % self.T == 0:
            self._window = []
            self._window_key = self._hierarchy_key(snap)
            self._hierarchy_broken = False
            self._adjacency_broken = False
        self._window.append(snap)
        key = self._hierarchy_key(snap)
        if key != self._window_key and not self._hierarchy_broken:
            self._hierarchy_broken = True  # one diagnostic per block
            self.emit(
                r,
                f"hierarchy changed mid-phase {r // self.T} "
                f"(T={self.T}-stability violated)",
                phase=r // self.T, T=self.T,
            )
        if snap.clustered and self.member_adjacency and not self._adjacency_broken:
            bad = [
                v for v in range(snap.n)
                if snap.head_of[v] is not None
                and snap.head_of[v] != v
                and snap.head_of[v] not in snap.adj[v]
            ]
            if bad:
                self._adjacency_broken = True  # one diagnostic per block
                self.emit(
                    r,
                    f"{len(bad)} member(s) not adjacent to their head "
                    f"(first: node {bad[0]})",
                    nodes=tuple(bad[:8]), phase=r // self.T,
                )
        if len(self._window) == self.T:
            self._check_backbone(r)

    def _check_backbone(self, end_round: int) -> None:
        first = self._window[0]
        if not first.clustered:
            return
        from ..graphs.properties import (
            head_connectivity_witness,
            head_hop_distance,
        )
        from ..graphs.trace import GraphTrace

        phase = end_round // self.T
        window = GraphTrace(snapshots=list(self._window))
        witness = head_connectivity_witness(window, 0, len(self._window))
        if witness is None:
            self.emit(
                end_round,
                f"no stable connected head backbone in phase {phase} "
                "(Definition 5 violated)",
                phase=phase, T=self.T,
            )
            return
        hop = head_hop_distance(witness, first.heads())
        if hop is None or hop > self.L:
            self.emit(
                end_round,
                f"head backbone hop bound {hop} exceeds L={self.L} "
                f"in phase {phase} (Definition 7 violated)",
                phase=phase, hop_bound=hop, L=self.L,
            )


def default_monitors(spec=None, plan=None, scenario=None) -> List[Monitor]:
    """Assemble the monitors that apply to one planned execution.

    Coverage monotonicity always applies; the budget monitor applies to
    ``guarantee="guaranteed"`` specs; head progress applies when the plan
    declares a phase structure (``phase_length`` + ``progress_alpha``);
    stability applies when the scenario is clustered and declares (T, L);
    the analytical envelope applies on benign scenarios whose spec has a
    registered :class:`~repro.analysis.CostEnvelope` that the scenario
    can fully bind (fault-family runs are legitimately outside Table 2).
    """
    monitors: List[Monitor] = [CoverageMonotonicityMonitor()]
    if (spec is not None and plan is not None and scenario is not None
            and getattr(scenario, "family", "benign") == "benign"):
        try:
            from ..analysis import predict
            pred = predict(spec, scenario, plan=plan)
        except Exception:
            pred = None  # no envelope / unbound symbols / sympy absent
        if pred is not None:
            monitors.append(
                EnvelopeMonitor(
                    rounds_bound=pred.rounds,
                    messages_bound=pred.messages,
                    tokens_bound=pred.tokens,
                    guaranteed=spec.guarantee == "guaranteed",
                )
            )
    if plan is not None and plan.phase_length and plan.progress_alpha:
        monitors.append(HeadProgressMonitor(plan.phase_length, plan.progress_alpha))
    if spec is not None and plan is not None and spec.guarantee == "guaranteed":
        monitors.append(BudgetMonitor(plan.max_rounds))
    if scenario is not None:
        params = scenario.params
        if "T" in params and "L" in params and scenario.trace.snapshot(0).clustered:
            monitors.append(
                StabilityMonitor(
                    int(params["T"]),
                    int(params["L"]),
                    member_adjacency=int(params.get("d", 1)) <= 1,
                )
            )
    return monitors
