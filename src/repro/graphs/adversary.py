"""Adaptive adversaries: topology chosen *after* seeing node knowledge.

The dynamic-network lower-bound literature (KLO §1.3 and follow-ups)
distinguishes the *oblivious* adversary — the whole edge schedule fixed
in advance, which every :class:`~repro.graphs.trace.GraphTrace` models —
from the *adaptive* adversary that inspects protocol state before
committing to round r's graph.  Lower bounds for token dissemination are
proved against the adaptive kind.

The engine supports adaptivity through a second protocol hook: if the
network object exposes ``adaptive_snapshot(r, knowledge)``, the engine
calls it each round with every node's current token set instead of
``snapshot(r)``.  Note the information model: the adversary sees state,
the *nodes* don't see the adversary — matching the standard model.

Two concrete adversaries:

* :class:`KnowledgeClusteringAdversary` — each round builds a Hamiltonian
  path that chains nodes *with identical token sets* consecutively, so
  information can only cross at the few junctions between knowledge
  classes.  This is the classic slow-progress construction: per round the
  number of new (node, token) pairs is bounded by the number of class
  junctions, forcing Θ(n) rounds per token against flooding.
* :class:`QuarantineAdversary` — pushes the best-informed nodes to the
  far end of a path behind the least-informed ones, maximising the hop
  distance between knowledge and ignorance.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping

from ..sim.rng import SeedLike, make_rng
from ..sim.topology import Snapshot

__all__ = ["KnowledgeClusteringAdversary", "QuarantineAdversary"]

Knowledge = Mapping[int, FrozenSet[int]]


class _AdaptiveBase:
    """Common plumbing: size, 1-interval paths, deterministic tie-breaks."""

    def __init__(self, n: int, seed: SeedLike = None) -> None:
        if n < 2:
            raise ValueError(f"need at least two nodes, got {n}")
        self.n = n
        self._rng = make_rng(seed)
        self.rounds_served = 0

    # --- DynamicNetwork protocol ------------------------------------------

    def snapshot(self, r: int) -> Snapshot:
        """Oblivious access is not meaningful for an adaptive adversary."""
        raise RuntimeError(
            "adaptive adversary requires the engine's adaptive_snapshot hook"
        )

    def adaptive_snapshot(self, r: int, knowledge: Knowledge) -> Snapshot:
        """Commit to round ``r``'s graph given current node knowledge."""
        order = self._order(r, knowledge)
        self.rounds_served += 1
        edges = [(order[i], order[i + 1]) for i in range(self.n - 1)]
        return Snapshot.from_edges(self.n, edges)

    # --- strategy ----------------------------------------------------------

    def _order(self, r: int, knowledge: Knowledge) -> List[int]:
        raise NotImplementedError


class KnowledgeClusteringAdversary(_AdaptiveBase):
    """Chain equal-knowledge nodes consecutively (see module docstring)."""

    def _order(self, r: int, knowledge: Knowledge) -> List[int]:
        groups: Dict[FrozenSet[int], List[int]] = {}
        for v in range(self.n):
            groups.setdefault(frozenset(knowledge.get(v, frozenset())), []).append(v)
        # large classes first: junctions sit between the biggest blocks,
        # shuffled within a class so no node id is structurally favoured
        ordered_classes = sorted(
            groups.values(), key=lambda g: (-len(g), min(g))
        )
        order: List[int] = []
        for cls in ordered_classes:
            cls = list(cls)
            self._rng.shuffle(cls)
            order.extend(int(v) for v in cls)
        return order


class QuarantineAdversary(_AdaptiveBase):
    """Path sorted by ascending knowledge; the informed end is maximally far.

    Against single-token flooding from one source this recreates the
    rotating-star effect by distance: the token must traverse the entire
    ignorance gradient, one hop per round.
    """

    def _order(self, r: int, knowledge: Knowledge) -> List[int]:
        return sorted(
            range(self.n),
            key=lambda v: (len(knowledge.get(v, frozenset())), v),
        )
