"""The random-waypoint mobility model.

The standard MANET mobility workload the paper's introduction motivates:
each node repeatedly picks a uniform destination in the field and a speed
from ``[v_min, v_max]``, travels there in a straight line (one round = one
time unit), optionally pauses, then repeats.

The implementation is fully vectorised over nodes (positions, targets,
speeds and pause counters are numpy arrays; one round is a handful of
array ops), per the HPC guides — simulating 200 nodes for 1000 rounds
takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.rng import SeedLike, make_rng
from .field import Field

__all__ = ["RandomWaypoint"]


@dataclass
class RandomWaypoint:
    """Random-waypoint walker for ``n`` nodes in ``field``.

    Parameters
    ----------
    n:
        Number of nodes.
    field:
        Deployment area.
    v_min, v_max:
        Speed range in field units per round; each leg draws a uniform
        speed from it.  ``v_min > 0`` avoids the well-known speed-decay
        pathology of the model.
    pause:
        Rounds a node rests after arriving at its waypoint.
    seed:
        RNG seed; identical seeds reproduce identical trajectories.
    """

    n: int
    field: Field
    v_min: float = 5.0
    v_max: float = 15.0
    pause: int = 0
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need at least one node, got {self.n}")
        if not (0 < self.v_min <= self.v_max):
            raise ValueError(
                f"need 0 < v_min <= v_max, got [{self.v_min}, {self.v_max}]"
            )
        if self.pause < 0:
            raise ValueError(f"pause must be non-negative, got {self.pause}")
        self._rng = make_rng(self.seed)
        self.positions = self.field.uniform_positions(self.n, seed=self._rng)
        self._targets = self.field.uniform_positions(self.n, seed=self._rng)
        self._speeds = self._rng.uniform(self.v_min, self.v_max, size=self.n)
        self._pausing = np.zeros(self.n, dtype=int)

    def step(self) -> np.ndarray:
        """Advance one round and return the new ``(n, 2)`` position array.

        The returned array is a copy; callers may store it without aliasing
        the walker's state.
        """
        delta = self._targets - self.positions
        dist = np.hypot(delta[:, 0], delta[:, 1])
        moving = (self._pausing == 0)

        # nodes that reach (or overshoot) their waypoint this round
        arrive = moving & (dist <= self._speeds)
        travel = moving & ~arrive

        if np.any(travel):
            step_vec = delta[travel] / dist[travel, None] * self._speeds[travel, None]
            self.positions[travel] += step_vec
        if np.any(arrive):
            self.positions[arrive] = self._targets[arrive]
            self._pausing[arrive] = self.pause
            # draw the next leg for the arrived nodes
            k = int(arrive.sum())
            new_targets = self.field.uniform_positions(k, seed=self._rng)
            self._targets[arrive] = new_targets
            self._speeds[arrive] = self._rng.uniform(self.v_min, self.v_max, size=k)

        # only nodes that BEGAN this step paused burn a pause round; a node
        # that just arrived rests for the full `pause` subsequent rounds
        self._pausing[~moving] -= 1

        self.positions = self.field.clip(self.positions)
        return self.positions.copy()

    def run(self, rounds: int) -> np.ndarray:
        """Positions for ``rounds`` rounds as a ``(rounds, n, 2)`` array.

        Index 0 is the state *after* the first step; the constructor's
        initial placement is not included (use :attr:`positions` before
        calling if needed).
        """
        if rounds < 1:
            raise ValueError(f"need at least one round, got {rounds}")
        out = np.empty((rounds, self.n, 2), dtype=float)
        for r in range(rounds):
            out[r] = self.step()
        return out
