"""Command-line interface: ``python -m repro <command>``.

Regenerates any paper table/figure or extension sweep from the shell,
without writing a script:

.. code-block:: console

   $ python -m repro table3                 # analytic Table 3 + deviations
   $ python -m repro table3 --simulate      # measured counterpart
   $ python -m repro fig3                   # Algorithm-1 walkthrough
   $ python -m repro sweep-n --sizes 40 80 120
   $ python -m repro mobility --nodes 60 --rounds 80

Every command takes ``--seed`` for reproducibility and prints the same
fixed-width tables the benchmark suite persists.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.analysis import CostParams
from .experiments.figures import (
    fig1_example_network,
    fig2_definition_lattice,
    fig3_walkthrough,
)
from .experiments.report import format_records
from .experiments.sweeps import sweep_alpha_L, sweep_k, sweep_n, sweep_reaffiliation
from .experiments.tables import analytic_table2, analytic_table3, simulated_table3

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from 'Efficient Information "
        "Dissemination in Dynamic Networks' (ICPP 2013).",
    )
    parser.add_argument("--seed", type=int, default=2013,
                        help="master seed for simulated commands")
    sub = parser.add_subparsers(dest="command", required=True)

    t2 = sub.add_parser("table2", help="analytic cost model (Table 2)")
    t2.add_argument("--n0", type=int, default=100)
    t2.add_argument("--theta", type=int, default=30)
    t2.add_argument("--nm", type=float, default=40)
    t2.add_argument("--nr", type=float, default=3)
    t2.add_argument("--k", type=int, default=8)
    t2.add_argument("--alpha", type=int, default=5)
    t2.add_argument("--L", type=int, default=2)

    t3 = sub.add_parser("table3", help="the paper's numeric instance (Table 3)")
    t3.add_argument("--simulate", action="store_true",
                    help="also run the measured counterpart")
    t3.add_argument("--n0", type=int, default=100)

    sub.add_parser("fig1", help="example clustered network (Figure 1)")
    sub.add_parser("fig2", help="definition lattice (Figure 2)")
    sub.add_parser("fig3", help="Algorithm-1 walkthrough (Figure 3)")

    sn = sub.add_parser("sweep-n", help="cost vs network size (X1)")
    sn.add_argument("--sizes", type=int, nargs="+", default=[40, 80, 120, 160])
    sn.add_argument("--k", type=int, default=6)
    sn.add_argument("--alpha", type=int, default=3)

    sk = sub.add_parser("sweep-k", help="cost vs token count (X2a)")
    sk.add_argument("--ks", type=int, nargs="+", default=[2, 4, 8, 16])
    sk.add_argument("--n0", type=int, default=80)
    sk.add_argument("--theta", type=int, default=24)

    sr = sub.add_parser("sweep-nr", help="cost vs re-affiliation churn (X2b)")
    sr.add_argument("--ps", type=float, nargs="+",
                    default=[0.0, 0.1, 0.3, 0.6, 0.9])
    sr.add_argument("--n0", type=int, default=60)
    sr.add_argument("--theta", type=int, default=18)

    ab = sub.add_parser("ablation", help="alpha/L design ablation (X3a)")
    ab.add_argument("--alphas", type=int, nargs="+", default=[1, 2, 5])
    ab.add_argument("--Ls", type=int, nargs="+", default=[1, 2])

    mo = sub.add_parser("mobility", help="mobility end-to-end pipeline (X4)")
    mo.add_argument("--nodes", type=int, default=60)
    mo.add_argument("--rounds", type=int, default=80)
    mo.add_argument("--radius", type=float, default=160.0)

    ct = sub.add_parser("count", help="network-size estimation (X8)")
    ct.add_argument("--n0", type=int, default=30)
    ct.add_argument("--method", choices=["hierarchical", "flat", "kcommittee"],
                    default="hierarchical")

    pa = sub.add_parser("pareto", help="time/communication Pareto frontier (X12)")
    pa.add_argument("--n0", type=int, default=50)
    pa.add_argument("--k", type=int, default=5)

    return parser


def _cmd_mobility(args) -> str:
    from .baselines.klo import make_klo_one_factory
    from .clustering import hierarchy_stats, maintain_clustering
    from .core.algorithm2 import make_algorithm2_factory
    from .mobility import Field, RandomWaypoint, unit_disk_trace
    from .sim import initial_assignment, run

    n, rounds, k = args.nodes, args.rounds, 6
    field = Field(10 * n, 10 * n)
    traj = RandomWaypoint(n=n, field=field, v_min=10, v_max=40,
                          seed=args.seed).run(rounds)
    flat = unit_disk_trace(traj, radius=args.radius, ensure_connected=True)
    clustered, _ = maintain_clustering(flat)
    hs = hierarchy_stats(clustered)
    init = initial_assignment(k, n, mode="spread")
    ours = run(clustered, make_algorithm2_factory(M=rounds), k=k,
               initial=init, max_rounds=rounds)
    theirs = run(clustered, make_klo_one_factory(M=rounds), k=k,
                 initial=init, max_rounds=rounds)
    rows = [
        {"algorithm": "Algorithm 2 (HiNet)", "tokens": ours.metrics.tokens_sent,
         "completion": ours.metrics.completion_round, "complete": ours.complete},
        {"algorithm": "KLO (1-interval)", "tokens": theirs.metrics.tokens_sent,
         "completion": theirs.metrics.completion_round, "complete": theirs.complete},
    ]
    header = (f"hierarchy: theta={hs.theta}, nm={hs.mean_members:.1f}, "
              f"nr={hs.mean_reaffiliations:.2f}, L={hs.hop_bound_L}\n\n")
    return header + format_records(rows)


def _cmd_count(args) -> str:
    from .baselines.kcommittee import klo_counting
    from .core.counting import count_flat, count_hierarchical
    from .experiments.scenarios import hinet_one_scenario

    n = args.n0
    scenario = hinet_one_scenario(
        n0=n, theta=max(n * 3 // 10, 2), k=1, L=2, seed=args.seed
    )
    if args.method == "kcommittee":
        out = klo_counting(scenario.trace)
        return (
            f"k-committee accepted at k={out.k} "
            f"(true n={n}, guarantee n <= 2k): "
            f"{out.rounds_used} rounds, {out.tokens_sent} tokens"
        )
    fn = count_hierarchical if args.method == "hierarchical" else count_flat
    out = fn(scenario.trace)
    return (
        f"{args.method} count: exact={out.exact} "
        f"(true n={n}), {out.rounds} rounds, {out.tokens_sent} tokens"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "table2":
        params = CostParams(n0=args.n0, theta=args.theta, nm=args.nm,
                            nr=args.nr, k=args.k, alpha=args.alpha, L=args.L)
        print(format_records(analytic_table2(params)))
    elif args.command == "table3":
        print(format_records(analytic_table3()))
        if args.simulate:
            print()
            print(format_records(simulated_table3(seed=args.seed, n0=args.n0)))
    elif args.command == "fig1":
        _, text = fig1_example_network()
        print(text)
    elif args.command == "fig2":
        _, text = fig2_definition_lattice(seed=args.seed)
        print(text)
    elif args.command == "fig3":
        print(fig3_walkthrough(seed=args.seed))
    elif args.command == "sweep-n":
        print(format_records(sweep_n(ns=args.sizes, k=args.k,
                                     alpha=args.alpha, seed=args.seed)))
    elif args.command == "sweep-k":
        print(format_records(sweep_k(ks=args.ks, n0=args.n0,
                                     theta=args.theta, seed=args.seed)))
    elif args.command == "sweep-nr":
        print(format_records(sweep_reaffiliation(ps=args.ps, n0=args.n0,
                                                 theta=args.theta,
                                                 seed=args.seed)))
    elif args.command == "ablation":
        print(format_records(sweep_alpha_L(alphas=args.alphas, Ls=args.Ls,
                                           seed=args.seed)))
    elif args.command == "mobility":
        print(_cmd_mobility(args))
    elif args.command == "count":
        print(_cmd_count(args))
    elif args.command == "pareto":
        from .experiments.pareto import dissemination_pareto

        rows, frontier = dissemination_pareto(
            n0=args.n0, k=args.k, theta=max(args.n0 * 3 // 10, 2),
            seed=args.seed,
        )
        print(format_records(rows))
        print()
        print("frontier:", ", ".join(str(r["algorithm"]) for r in frontier))
    else:  # pragma: no cover — argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
