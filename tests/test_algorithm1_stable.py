"""Tests for the Remark-1 variant (∞-stable head set)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm1 import make_algorithm1_factory
from repro.core.algorithm1_stable import (
    Algorithm1StableHeadsNode,
    make_algorithm1_stable_factory,
)
from repro.core.bounds import algorithm1_stable_phases, required_T
from repro.graphs.generators.hinet import HiNetParams, generate_hinet
from repro.roles import Role
from repro.sim.engine import run
from repro.sim.messages import initial_assignment
from repro.sim.node import RoundContext


def _ctx(r, node=1, role=Role.MEMBER, head=0):
    return RoundContext(round_index=r, node=node, neighbors=frozenset({0}),
                        role=role, head=head)


def _scenario(k=4, alpha=2, L=2, num_heads=5, n=30, seed=1, reaff=0.3):
    """∞-stable head set: head_churn = 0."""
    T = required_T(k, alpha, L)
    M = algorithm1_stable_phases(num_heads, alpha)
    scen = generate_hinet(
        HiNetParams(n=n, theta=num_heads, num_heads=num_heads, T=T, phases=M,
                    L=L, reaffiliation_p=reaff, head_churn=0, churn_p=0.0),
        seed=seed,
    )
    return scen, T, M


class TestMemberRule:
    def test_uploads_in_phase_zero(self):
        node = Algorithm1StableHeadsNode(1, 2, frozenset({0, 1}), T=3, M=2)
        msgs = node.send(_ctx(0))
        assert msgs and msgs[0].tokens == frozenset({1})

    def test_silent_after_phase_zero_even_on_head_change(self):
        node = Algorithm1StableHeadsNode(1, 2, frozenset({0, 1}), T=2, M=4)
        node.send(_ctx(0))
        node.send(_ctx(1))
        # phase 1 with a NEW head: Algorithm 1 would re-upload; Remark 1 not
        assert node.send(_ctx(2, head=9)) == []
        assert node.send(_ctx(3, head=9)) == []

    def test_heads_unchanged_from_algorithm1(self):
        node = Algorithm1StableHeadsNode(0, 2, frozenset({0, 1}), T=3, M=1)
        msgs = node.send(_ctx(0, node=0, role=Role.HEAD, head=0))
        assert msgs[0].tokens == frozenset({0})  # min-unsent broadcast


class TestRemark1EndToEnd:
    def test_completes_within_reduced_bound(self):
        scen, T, M = _scenario()
        res = run(
            scen.trace,
            make_algorithm1_stable_factory(T=T, M=M),
            k=4,
            initial=initial_assignment(4, scen.params.n, mode="spread"),
            max_rounds=M * T,
        )
        assert res.complete

    def test_cheaper_than_algorithm1_under_reaffiliation(self):
        """Remark 1's point: member re-affiliations no longer cost uploads."""
        scen, T, M = _scenario(reaff=0.5, seed=7)
        initial = initial_assignment(4, scen.params.n, mode="spread")
        base = run(scen.trace, make_algorithm1_factory(T=T, M=M), k=4,
                   initial=initial, max_rounds=M * T)
        stable = run(scen.trace, make_algorithm1_stable_factory(T=T, M=M), k=4,
                     initial=initial, max_rounds=M * T)
        assert base.complete and stable.complete
        member_base = base.metrics.role_tokens("member")
        member_stable = stable.metrics.role_tokens("member")
        assert member_stable <= member_base
        assert stable.metrics.tokens_sent <= base.metrics.tokens_sent

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_randomised_correctness(self, seed):
        scen, T, M = _scenario(seed=seed)
        res = run(
            scen.trace,
            make_algorithm1_stable_factory(T=T, M=M),
            k=4,
            initial=initial_assignment(4, scen.params.n, mode="spread"),
            max_rounds=M * T,
        )
        assert res.complete
