"""Tests for dynamic diameter and flood-time computation."""

import pytest

from repro.graphs.dynamic_diameter import dynamic_diameter, flood_times
from repro.graphs.generators.static import path_graph, static_trace
from repro.graphs.generators.worstcase import rotating_star_trace
from repro.graphs.trace import GraphTrace
from repro.sim.topology import Snapshot


class TestFloodTimes:
    def test_static_path_matches_eccentricity(self):
        trace = static_trace(path_graph(5), rounds=10)
        assert flood_times(trace) == [4, 3, 2, 3, 4]

    def test_unreachable_is_none(self):
        trace = GraphTrace([Snapshot.from_edges(3, [(0, 1)])] * 4)
        times = flood_times(trace)
        assert times[2] is None


class TestDynamicDiameter:
    def test_static_equals_graph_diameter(self):
        trace = static_trace(path_graph(6), rounds=10)
        assert dynamic_diameter(trace) == 5

    def test_none_when_horizon_too_short(self):
        trace = static_trace(path_graph(6), rounds=3, extend="strict")
        assert dynamic_diameter(trace, horizon=3) is None

    def test_fixed_star_is_fast(self):
        """A static star (stride 0) has dynamic diameter 2."""
        trace = rotating_star_trace(8, rounds=10, stride=0)
        d = dynamic_diameter(trace)
        assert d == 2

    def test_rotating_star_is_adversarial(self):
        """Rotation blocks leaf-to-leaf relay: the uninformed centre keeps
        moving, so flooding needs ~n rounds — a genuinely hard 1-interval
        instance despite per-round diameter 2."""
        trace = rotating_star_trace(8, rounds=20, stride=1)
        d = dynamic_diameter(trace)
        assert d is not None and d >= 7  # n - 1: one new centre per round

    def test_multiple_starts_take_worst(self):
        """Dynamics can make later starts slower; the diameter is the max."""
        fast = Snapshot.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        slow = Snapshot.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        trace = GraphTrace([fast] + [slow] * 6)
        d0 = dynamic_diameter(trace, starts=[0])
        d1 = dynamic_diameter(trace, starts=[1])
        assert d1 >= d0
        assert dynamic_diameter(trace, starts=[0, 1]) == max(d0, d1)

    def test_dynamic_can_beat_every_snapshot_diameter(self):
        """The hallmark of dynamic reachability: a moving edge chain relays
        information although each snapshot is disconnected."""
        rounds = [
            [(0, 1)],
            [(1, 2)],
            [(2, 3)],
        ]
        trace = GraphTrace([Snapshot.from_edges(4, e) for e in rounds])
        times = flood_times(trace)
        assert times[0] == 3  # 0 reaches everyone via the moving edge
        assert times[3] is None  # but 3 cannot go backwards in time
