"""Process-parallel experiment execution.

Sweeps and replications are embarrassingly parallel — every cell is an
independent seeded simulation — so they scale linearly across cores with
process-level parallelism (the GIL rules out threads for this CPU-bound
work; per the HPC guides, measure first: a single Table-3 scenario runs
in ~50 ms, so parallelism only pays for grids of hundreds of cells or
slow per-cell experiments).

Everything submitted must be picklable: module-level functions and plain
argument tuples, not closures — the usual `concurrent.futures` contract.
Results are returned **in input order** regardless of completion order,
so parallel and serial runs are interchangeable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, TypeVar

from ..sim.rng import SeedLike, derive_seed
from .replication import MetricSummary, summarize

__all__ = ["ShardPool", "parallel_map", "parallel_replicate"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: Optional[int] = None,
) -> List[R]:
    """Apply a picklable ``fn`` over ``items`` across worker processes.

    ``processes=None`` uses ``os.cpu_count()``; ``processes=1`` (or a
    single item) runs serially in-process — handy for debugging, since
    tracebacks then surface directly.
    """
    items = list(items)
    if processes is None:
        processes = os.cpu_count() or 1
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if processes == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(processes, len(items))) as pool:
        return list(pool.map(fn, items))


class ShardPool:
    """A persistent worker pool for per-round sharded kernels.

    :func:`parallel_map` spins a fresh :class:`ProcessPoolExecutor` per
    call — fine for sweeps (one call, hundreds of cells), fatal for the
    columnar engine's sharded delivery, which maps a handful of shard
    tasks *every round*.  This wrapper keeps the executor (and its warm
    worker imports) alive across rounds; results come back in input
    order, so sharded runs stay deterministic.

    Same pickling contract as :func:`parallel_map`: module-level
    functions and array/tuple arguments only.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is None:
            processes = os.cpu_count() or 1
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self._pool: Optional[ProcessPoolExecutor] = None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` over ``items`` on the persistent workers, in order."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.processes)
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_replicate(
    experiment: Callable[[int], Mapping[str, float]],
    replications: int = 10,
    base_seed: SeedLike = 0,
    processes: Optional[int] = None,
) -> Dict[str, MetricSummary]:
    """Multi-seed replication with worker processes.

    The process-parallel sibling of
    :func:`repro.experiments.replication.replicate`: ``experiment`` must
    be a picklable (module-level) callable taking an integer seed.
    Seeds derive deterministically from ``base_seed``, so serial and
    parallel runs produce identical statistics.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    seeds = [derive_seed(base_seed, "rep", i) for i in range(replications)]
    rows = parallel_map(experiment, seeds, processes=processes)
    samples: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            samples.setdefault(key, []).append(float(value))
    return {key: summarize(vals) for key, vals in samples.items()}
