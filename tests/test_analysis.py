"""Tests for the Table 2 cost model and Table 3 reproduction, plus the
symbolic envelope engine (repro.analysis): registry-wide envelope
coverage, prediction semantics, the measured-vs-predicted validation
sweep, parameter-space argmin queries, and the ratio-table codec."""

from dataclasses import replace as dc_replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io
from repro.analysis import (
    ENVELOPES,
    SYMBOL_TABLE,
    SYMBOLS,
    argmin_bound,
    benign_scenario_for,
    envelope_for,
    evaluate,
    failures,
    predict,
    symbol,
    table_rows,
    validate_model,
)
from repro.core.analysis import (
    TABLE3_PAPER,
    TABLE3_PARAMS,
    TABLE3_PARAMS_ONE,
    CostParams,
    hinet_interval_comm,
    hinet_interval_time,
    hinet_one_comm,
    hinet_one_time,
    klo_interval_comm,
    klo_interval_time,
    klo_one_comm,
    klo_one_time,
    table2,
    table3,
)
from repro.registry import all_specs, get_spec


class TestTable3Exact:
    """The paper's published Table 3 numbers, row by row."""

    def test_klo_interval_row(self):
        assert klo_interval_time(TABLE3_PARAMS) == 180
        assert klo_interval_comm(TABLE3_PARAMS) == 8000

    def test_hinet_interval_row(self):
        assert hinet_interval_time(TABLE3_PARAMS) == 126
        assert hinet_interval_comm(TABLE3_PARAMS) == 4320

    def test_klo_one_row(self):
        assert klo_one_time(TABLE3_PARAMS_ONE) == 99
        assert klo_one_comm(TABLE3_PARAMS_ONE) == 79200

    def test_hinet_one_row_documents_paper_slip(self):
        """The formula yields 50 720; the paper prints 51 680 (a 960-token
        arithmetic slip in the original)."""
        assert hinet_one_time(TABLE3_PARAMS_ONE) == 99
        assert hinet_one_comm(TABLE3_PARAMS_ONE) == 50720
        assert TABLE3_PAPER["(1, L)-HiNet"]["comm_tokens"] == 51680

    def test_table3_rows_complete(self):
        rows = table3()
        assert [r["model"] for r in rows] == list(TABLE3_PAPER)
        for row in rows:
            published = TABLE3_PAPER[row["model"]]
            assert row["time_rounds"] == published["time_rounds"]
        # three of four comm entries match the paper exactly
        matches = sum(
            1 for row in rows
            if row["comm_tokens"] == TABLE3_PAPER[row["model"]]["comm_tokens"]
        )
        assert matches == 3


class TestValidation:
    def test_param_bounds(self):
        with pytest.raises(ValueError):
            CostParams(n0=0, theta=0, nm=0, nr=0, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=11, nm=0, nr=0, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=5, nm=11, nr=0, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=5, nm=5, nr=-1, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=5, nm=5, nr=0, k=1, alpha=0)

    def test_interval_T(self):
        assert TABLE3_PARAMS.interval_T == 18

    def test_table2_accepts_distinct_one_interval_params(self):
        rows = table2(TABLE3_PARAMS, TABLE3_PARAMS_ONE)
        assert rows[3]["comm_tokens"] == 50720
        rows_same = table2(TABLE3_PARAMS)
        assert rows_same[3]["comm_tokens"] == hinet_one_comm(TABLE3_PARAMS)


@st.composite
def cost_params(draw):
    n0 = draw(st.integers(2, 400))
    theta = draw(st.integers(1, n0))
    nm = draw(st.integers(0, n0 - 1))
    nr = draw(st.integers(0, 20))
    k = draw(st.integers(1, 64))
    alpha = draw(st.integers(1, 10))
    L = draw(st.integers(1, 3))
    return CostParams(n0=n0, theta=theta, nm=nm, nr=nr, k=k, alpha=alpha, L=L)


class TestModelProperties:
    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_costs_non_negative(self, p):
        for fn in (klo_interval_time, klo_interval_comm, hinet_interval_time,
                   hinet_interval_comm, klo_one_time, klo_one_comm,
                   hinet_one_time, hinet_one_comm):
            assert fn(p) >= 0

    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_comm_linear_in_k(self, p):
        """All Table 2 communication formulas are exactly linear in k."""
        from dataclasses import replace

        p2 = replace(p, k=2 * p.k)
        for fn in (klo_interval_comm, hinet_interval_comm, klo_one_comm,
                   hinet_one_comm):
            assert fn(p2) == pytest.approx(2 * fn(p))

    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_hinet_one_beats_klo_one_when_nr_small(self, p):
        """The paper's headline: if n_r < n0 - 1, Algorithm 2 strictly
        undercuts 1-interval KLO communication (for nm > 0)."""
        from dataclasses import replace

        p = replace(p, nr=0)
        if p.nm > 0 and p.k > 0:
            assert hinet_one_comm(p) < klo_one_comm(p)
        else:
            assert hinet_one_comm(p) <= klo_one_comm(p)

    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_hinet_interval_time_beats_klo_when_theta_small(self, p):
        """Time: (⌈θ/α⌉+1) phases vs ⌈n0/(αL)⌉ phases — HiNet wins whenever
        its phase count is smaller, both paying (k+αL) per phase."""
        from math import ceil

        hinet_phases = ceil(p.theta / p.alpha) + 1
        klo_phases = ceil(p.n0 / (p.alpha * p.L))
        assert (hinet_interval_time(p) <= klo_interval_time(p)) == (
            hinet_phases <= klo_phases
        )


# ---------------------------------------------------------------------------
# Symbolic envelope engine (repro.analysis)
# ---------------------------------------------------------------------------


class TestEnvelopeRegistry:
    def test_every_registered_spec_has_an_envelope(self):
        for spec in all_specs():
            env = spec.envelope()
            assert env is not None, f"{spec.name} has no analytical envelope"
            assert env.name == spec.name
            assert env is envelope_for(spec.name)

    def test_envelope_and_spec_registries_agree(self):
        assert set(ENVELOPES) == {spec.name for spec in all_specs()}

    def test_name_lookup_tolerates_separator_style(self):
        assert envelope_for("klo_interval") is envelope_for("klo-interval")
        assert envelope_for("no-such-algorithm") is None

    def test_kind_is_validated(self):
        env = ENVELOPES["algorithm1"]
        with pytest.raises(ValueError):
            dc_replace(env, kind="conjecture")

    def test_symbol_table_documents_every_symbol(self):
        assert {row["symbol"] for row in SYMBOL_TABLE} == set(SYMBOLS)
        assert symbol("alpha") is SYMBOLS["alpha"]
        with pytest.raises(KeyError):
            symbol("zeta")


class TestPredict:
    def _pred(self, name, n0=24, k=3):
        spec = get_spec(name)
        scenario = benign_scenario_for(spec, n0=n0, k=k, seed=2013)
        overrides = {"seed": 2013} if spec.seeded else {}
        return spec, predict(spec, scenario, **overrides)

    def test_theorem_round_bounds_equal_planned_budget(self):
        """A theorem envelope's round bound is exactly the budget the
        planner derives from the same formula — one source of truth."""
        for spec in all_specs():
            env = spec.envelope()
            if env.kind != "theorem":
                continue
            _, pred = self._pred(spec.name)
            assert pred.rounds == pred.budget, spec.name

    def test_algorithm1_table2_tokens_match_numeric_model(self):
        """The symbolic Table 2 token bound agrees with the numeric
        cost model in repro.core.analysis (plus the nm*k completion
        allowance the budget checker grants)."""
        p = TABLE3_PARAMS
        bound = evaluate(
            ENVELOPES["algorithm1"].tokens,
            {"n": p.n0, "k": p.k, "theta": p.theta, "alpha": p.alpha,
             "nm": p.nm, "nr": p.nr},
        )
        assert bound == hinet_interval_comm(p) + p.nm * p.k

    def test_klo_one_exact_table2_row(self):
        spec, pred = self._pred("klo-one")
        assert pred.tokens == (pred.n - 1) * pred.n * pred.k
        assert pred.tokens_form == "structural"

    def test_sharp_vs_structural_token_forms(self):
        _, alg1 = self._pred("algorithm1")
        assert alg1.tokens_form == "table2"
        _, flood = self._pred("flood-new")
        assert flood.tokens_form == "structural"

    def test_unbound_symbol_raises_with_diagnosis(self):
        with pytest.raises(ValueError, match="unbound symbol"):
            evaluate(SYMBOLS["n"] * SYMBOLS["k"], {"n": 10})

    def test_missing_envelope_raises_lookup_error(self):
        ghost = dc_replace(get_spec("algorithm1"), name="ghost-algorithm")
        scenario = benign_scenario_for(ghost, n0=24, k=3, seed=2013)
        with pytest.raises(LookupError, match="ghost-algorithm"):
            predict(ghost, scenario)


class TestArgminBound:
    def test_alpha_minimises_algorithm1_rounds(self):
        best, value = argmin_bound(
            "algorithm1", "rounds", vary={"alpha": range(1, 9)},
            n=100, k=8, theta=30, L=2, T=18,
        )
        assert best["alpha"] == 8
        env = ENVELOPES["algorithm1"]
        assert value == evaluate(
            env.rounds, {"n": 100, "k": 8, "theta": 30, "L": 2, "T": 18,
                         "alpha": 8})

    def test_unevaluable_grid_raises(self):
        with pytest.raises(ValueError):
            # theta is never bound, so no grid point evaluates
            argmin_bound("algorithm1", "rounds",
                         vary={"alpha": range(1, 4)}, n=100, k=8, T=18)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="pick rounds"):
            argmin_bound("algorithm1", "latency", vary={"alpha": [1]}, n=10)


class TestValidateModel:
    def test_registry_sweep_stays_inside_table2_envelopes(self):
        """Acceptance: every registered spec, on its benign scenario
        family, measures inside its analytical envelope."""
        rows = validate_model(n0=24, k=3)
        assert len(rows) == len(list(all_specs()))
        assert failures(rows) == []
        assert all(row["within"] is True for row in rows)

    def test_adversarial_rows_report_floor_without_gating(self):
        rows = validate_model(n0=24, k=3, include_adversarial=True)
        adv = [r for r in rows if r["family"] == "adversarial"]
        assert adv, "no spec qualified for the adversarial sweep"
        assert all(r["within"] is None for r in adv)
        floored = [r for r in adv if "rounds_floor" in r]
        assert floored and all("floor_note" in r for r in floored)

    def test_rows_carry_role_and_provenance_columns(self):
        rows = validate_model(n0=24, k=3, algorithms=["algorithm1"])
        (row,) = rows
        assert row["role_tokens"] and all(
            isinstance(v, int) for v in row["role_tokens"].values())
        assert row["last_learn_round"] <= row["rounds"]

    def test_table_rows_flatten_for_formatters(self):
        rows = validate_model(n0=24, k=3, algorithms=["algorithm1"])
        (flat,) = table_rows(rows)
        assert flat["within"] == "yes"
        assert not any(isinstance(v, dict) for v in flat.values())


class TestRatioTableCodec:
    def test_round_trip(self, tmp_path):
        rows = validate_model(n0=24, k=3, algorithms=["flood-new"])
        path = tmp_path / "ratios.json"
        io.save_ratio_table(rows, path, meta={"n0": 24, "k": 3})
        loaded = io.load_ratio_table(path)
        assert loaded == [dict(r) for r in rows]

    def test_format_field_is_enforced(self):
        with pytest.raises(ValueError):
            io.ratio_table_from_dict({"format": "repro-run", "rows": []})
        with pytest.raises(ValueError):
            io.ratio_table_from_dict(
                {"format": "repro-envelope-ratios", "rows": None})
