"""Worst-case 1-interval connected adversaries.

These implement the adversarial dynamics used in the dynamic-network lower
bound literature: each round the graph is connected (so Theorem 2-style
correctness holds), but the adversary rewires it completely to slow
dissemination as much as a structure-oblivious adversary can.

* :func:`shuffled_path_trace` — each round is a fresh uniformly random
  Hamiltonian path.  A path is the connected graph with the fewest edges
  and largest diameter, so token progress is minimal per round; this is the
  classic hard instance for flooding-style algorithms.
* :func:`rotating_star_trace` — each round is a star whose centre rotates
  deterministically.  Every node is within 2 hops, yet the churn forces
  re-uploads in clustered algorithms; useful as a high-re-affiliation
  stress case.
* :func:`bottleneck_trace` — two cliques joined by a single bridge whose
  endpoint rotates; dissemination must squeeze through one edge per round.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from ...sim.rng import SeedLike, make_rng
from ...sim.topology import Snapshot
from ..trace import GraphTrace

__all__ = ["bottleneck_trace", "rotating_star_trace", "shuffled_path_trace"]


def shuffled_path_trace(n: int, rounds: int, seed: SeedLike = None) -> GraphTrace:
    """Every round an independent uniformly random path over all ``n`` nodes."""
    if n < 2:
        raise ValueError(f"need at least two nodes, got {n}")
    if rounds < 1:
        raise ValueError(f"need at least one round, got {rounds}")
    rng = make_rng(seed)
    snaps: List[Snapshot] = []
    for _ in range(rounds):
        order = rng.permutation(n)
        edges = [(int(order[i]), int(order[i + 1])) for i in range(n - 1)]
        snaps.append(Snapshot.from_edges(n, edges))
    return GraphTrace(snapshots=snaps, extend="hold")


def rotating_star_trace(n: int, rounds: int, stride: int = 1) -> GraphTrace:
    """Every round a star centred on node ``(r * stride) mod n``."""
    if n < 2:
        raise ValueError(f"need at least two nodes, got {n}")
    if rounds < 1:
        raise ValueError(f"need at least one round, got {rounds}")
    if stride < 0:
        raise ValueError(f"stride must be non-negative, got {stride}")
    snaps: List[Snapshot] = []
    for r in range(rounds):
        centre = (r * stride) % n
        edges = [(centre, v) for v in range(n) if v != centre]
        snaps.append(Snapshot.from_edges(n, edges))
    return GraphTrace(snapshots=snaps, extend="hold")


def bottleneck_trace(n: int, rounds: int, seed: SeedLike = None) -> GraphTrace:
    """Two cliques of ⌈n/2⌉ and ⌊n/2⌋ nodes joined by one random bridge per round.

    All information flowing between the halves must cross the single bridge
    edge, whose endpoints are re-chosen uniformly each round — a moving
    cut of capacity one.
    """
    if n < 4:
        raise ValueError(f"need at least four nodes for two cliques, got {n}")
    if rounds < 1:
        raise ValueError(f"need at least one round, got {rounds}")
    rng = make_rng(seed)
    half = n // 2
    left = list(range(half))
    right = list(range(half, n))
    base = nx.Graph()
    base.add_nodes_from(range(n))
    base.add_edges_from(nx.complete_graph(len(left)).edges())
    base.add_edges_from(
        (right[i], right[j])
        for i in range(len(right))
        for j in range(i + 1, len(right))
    )
    snaps: List[Snapshot] = []
    for _ in range(rounds):
        g = base.copy()
        u = int(rng.choice(left))
        v = int(rng.choice(right))
        g.add_edge(u, v)
        snaps.append(Snapshot.from_networkx(g))
    return GraphTrace(snapshots=snaps, extend="hold")
