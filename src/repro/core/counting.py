"""Counting (network-size estimation) via token dissemination.

KLO's STOC'10 paper frames counting and token dissemination as the two
core primitives of dynamic-network computation; the reproduced paper
inherits the assumption that nodes know bounds like θ and n₀.  This
module closes that loop: every node treats *its own id* as a token and
runs a dissemination algorithm; once dissemination completes, every
node's token count **is** the network size, and the maximum id bounds the
id space.

Two variants are provided:

* :func:`count_flat` — ids flooded with the 1-interval KLO rule (every
  node broadcasts all known ids every round); the textbook n−1-round
  counting protocol.
* :func:`count_hierarchical` — ids disseminated with Algorithm 2 on a
  clustered trace: members upload their id once, heads/gateways do the
  repetition.  Same correctness envelope (Theorem 2), hierarchically
  cheaper — the paper's communication saving applies to counting too,
  which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..baselines.klo import make_klo_one_factory
from ..sim.engine import DynamicNetwork, RunResult, run
from .algorithm2 import make_algorithm2_factory

__all__ = ["CountingResult", "count_flat", "count_hierarchical"]


@dataclass
class CountingResult:
    """Outcome of a counting run.

    Attributes
    ----------
    counts:
        Each node's estimate of the network size (exact iff ``exact``).
    exact:
        Whether every node's count equals the true ``n``.
    tokens_sent:
        Communication spent (id-tokens on air).
    rounds:
        Rounds executed.
    """

    counts: Dict[int, int]
    exact: bool
    tokens_sent: int
    rounds: int

    @classmethod
    def from_run(cls, result: RunResult) -> "CountingResult":
        counts = {v: len(toks) for v, toks in result.outputs.items()}
        return cls(
            counts=counts,
            exact=all(c == result.n for c in counts.values()),
            tokens_sent=result.metrics.tokens_sent,
            rounds=result.metrics.rounds,
        )


def _id_assignment(n: int) -> Dict[int, frozenset]:
    return {v: frozenset({v}) for v in range(n)}


def count_flat(network: DynamicNetwork, rounds: Optional[int] = None) -> CountingResult:
    """Count by flooding ids (KLO 1-interval rule) for ``n − 1`` rounds.

    Requires 1-interval connectivity for exactness.
    """
    n = network.n
    M = max(n - 1, 1) if rounds is None else rounds
    result = run(
        network,
        make_klo_one_factory(M=M),
        k=n,
        initial=_id_assignment(n),
        max_rounds=M,
    )
    return CountingResult.from_run(result)


def count_hierarchical(
    network: DynamicNetwork, rounds: Optional[int] = None
) -> CountingResult:
    """Count by disseminating ids with Algorithm 2 on a clustered trace.

    The trace must carry hierarchy annotations (a HiNet scenario or a
    maintained clustering); correctness needs 1-interval connectivity, as
    in Theorem 2.
    """
    n = network.n
    M = max(n - 1, 1) if rounds is None else rounds
    result = run(
        network,
        make_algorithm2_factory(M=M),
        k=n,
        initial=_id_assignment(n),
        max_rounds=M,
    )
    return CountingResult.from_run(result)
