"""Message and token types for the synchronous round model.

Tokens
------
A *token* is the unit of information being disseminated (paper, Section I:
the :math:`k`-token dissemination problem).  Internally every algorithm
works with plain integer token identifiers ``0 .. k-1`` — the paper only
requires that ids be unique and totally ordered ("each token is stamped
with a unique id, and the id is comparable with others").  The optional
:class:`TokenDomain` maps ids to user payloads so applications can
disseminate arbitrary objects without the hot paths paying for them.

Messages
--------
A :class:`Message` is one *transmission*: either a local **broadcast**
(received by every current neighbour of the sender — one wireless
transmission regardless of neighbour count, matching the paper's
communication accounting) or a **unicast** to a named neighbour (the
member → cluster-head uploads of Algorithms 1 and 2).

The communication cost of a message is ``len(message.tokens)`` — the
"total number of tokens sent" metric used throughout the paper's Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, FrozenSet, Iterable, Mapping, Optional

__all__ = ["Delivery", "Message", "TokenDomain", "TokenSet", "token_range"]

#: The canonical in-flight representation of a set of tokens.
TokenSet = FrozenSet[int]


def token_range(k: int) -> TokenSet:
    """The full token universe ``{0, …, k-1}`` as a frozen set."""
    if k < 0:
        raise ValueError(f"token count must be non-negative, got {k}")
    return frozenset(range(k))


class Delivery(Enum):
    """How a message is delivered within its round."""

    BROADCAST = "broadcast"  #: to all neighbours in the round's graph
    UNICAST = "unicast"      #: to one named neighbour (dropped if not adjacent)


@dataclass(frozen=True, slots=True)
class Message:
    """One transmission in one round.

    Parameters
    ----------
    sender:
        Node id of the transmitting node.
    tokens:
        The token ids carried.  An empty message is legal but pointless;
        engines skip it and it costs nothing.
    delivery:
        Broadcast or unicast.
    dest:
        Destination node id; required iff ``delivery`` is unicast.
    tag:
        Free-form label used by algorithms to demultiplex (e.g. Algorithm 1
        members must distinguish tokens arriving *from their own head* from
        overheard gateway traffic).
    payload:
        Opaque algorithm data for protocols that do not ship plain tokens
        (the network-coding baseline ships GF(2)-coded packets here).
    payload_cost:
        Token-equivalents charged for the payload (a coded packet the size
        of one token costs 1).
    """

    sender: int
    tokens: TokenSet
    delivery: Delivery = Delivery.BROADCAST
    dest: Optional[int] = None
    tag: str = ""
    payload: Any = None
    payload_cost: int = 0

    def __post_init__(self) -> None:
        if self.delivery is Delivery.UNICAST and self.dest is None:
            raise ValueError("unicast message requires a dest node id")
        if self.delivery is Delivery.BROADCAST and self.dest is not None:
            raise ValueError("broadcast message must not name a dest")
        if not isinstance(self.tokens, frozenset):
            object.__setattr__(self, "tokens", frozenset(self.tokens))
        if self.payload_cost < 0:
            raise ValueError(f"payload_cost must be non-negative, got {self.payload_cost}")
        if self.payload is not None and self.payload_cost == 0:
            raise ValueError("a payload-carrying message must declare a payload_cost")

    @property
    def cost(self) -> int:
        """Communication cost of this transmission (tokens + payload equivalents)."""
        return len(self.tokens) + self.payload_cost

    @staticmethod
    def broadcast(sender: int, tokens: Iterable[int], tag: str = "") -> "Message":
        """Convenience constructor for a broadcast transmission."""
        return Message(sender=sender, tokens=frozenset(tokens), tag=tag)

    @staticmethod
    def unicast(sender: int, dest: int, tokens: Iterable[int], tag: str = "") -> "Message":
        """Convenience constructor for a unicast transmission."""
        return Message(
            sender=sender,
            tokens=frozenset(tokens),
            delivery=Delivery.UNICAST,
            dest=dest,
            tag=tag,
        )


@dataclass
class TokenDomain:
    """Mapping between integer token ids and user-level payloads.

    The dissemination algorithms never look at payloads; this class lets an
    application hand in arbitrary hashable items and get them back once the
    run completes.

    Examples
    --------
    >>> dom = TokenDomain.from_items(["alpha", "beta"])
    >>> dom.k
    2
    >>> dom.payload(1)
    'beta'
    """

    payloads: list = field(default_factory=list)
    _index: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_items(cls, items: Iterable[Any]) -> "TokenDomain":
        """Build a domain assigning ids in iteration order; items must be unique."""
        dom = cls()
        for item in items:
            dom.add(item)
        return dom

    @property
    def k(self) -> int:
        """Number of tokens in the domain."""
        return len(self.payloads)

    def add(self, item: Any) -> int:
        """Register ``item`` and return its token id (idempotent per item)."""
        if item in self._index:
            return self._index[item]
        token_id = len(self.payloads)
        self.payloads.append(item)
        self._index[item] = token_id
        return token_id

    def payload(self, token_id: int) -> Any:
        """Return the payload registered for ``token_id``."""
        return self.payloads[token_id]

    def token_id(self, item: Any) -> int:
        """Return the id previously assigned to ``item``."""
        return self._index[item]

    def decode(self, tokens: Iterable[int]) -> list:
        """Map a collection of token ids back to payloads (sorted by id)."""
        return [self.payloads[t] for t in sorted(tokens)]


def initial_assignment(
    k: int, n: int, rng=None, mode: str = "spread"
) -> Mapping[int, TokenSet]:
    """Assign the ``k`` input tokens to ``n`` nodes.

    The problem statement only fixes the *total* number of tokens across all
    inputs; this helper provides the standard workloads:

    - ``"spread"``:  token ``i`` starts at node ``i % n`` (deterministic).
    - ``"single"``:  all tokens start at node 0 (the broadcast special case).
    - ``"random"``:  each token starts at a uniformly random node (needs
      ``rng``).

    Returns a dict mapping node id → frozenset of initially-known tokens
    (nodes absent from the dict hold no token).
    """
    if n <= 0:
        raise ValueError(f"need at least one node, got n={n}")
    if k < 0:
        raise ValueError(f"token count must be non-negative, got k={k}")
    out: dict[int, set[int]] = {}
    if mode == "spread":
        for t in range(k):
            out.setdefault(t % n, set()).add(t)
    elif mode == "single":
        if k:
            out[0] = set(range(k))
    elif mode == "random":
        if rng is None:
            raise ValueError("mode='random' requires an rng")
        from .rng import make_rng

        gen = make_rng(rng)
        for t in range(k):
            out.setdefault(int(gen.integers(0, n)), set()).add(t)
    else:
        raise ValueError(f"unknown assignment mode: {mode!r}")
    return {node: frozenset(toks) for node, toks in out.items()}
