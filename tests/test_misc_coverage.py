"""Remaining small-surface coverage: io corruption paths, viz corners,
runner records, report formatting details."""

import pytest

from repro.experiments.report import records_to_markdown
from repro.experiments.runner import run_algorithm1
from repro.experiments.scenarios import hinet_interval_scenario
from repro.graphs.generators.hinet import HiNetParams, generate_hinet
from repro.io import trace_from_dict, trace_to_dict
from repro.roles import Role
from repro.sim.topology import Snapshot
from repro.viz import render_clusters


class TestIoCorruption:
    def test_head_of_length_mismatch(self):
        trace = generate_hinet(
            HiNetParams(n=6, theta=2, num_heads=2, T=2, phases=1), seed=0
        ).trace
        data = trace_to_dict(trace)
        data["rounds"][0]["head_of"] = data["rounds"][0]["head_of"][:-1]
        with pytest.raises(ValueError, match="head_of"):
            trace_from_dict(data)

    def test_unknown_role_letter_rejected(self):
        trace = generate_hinet(
            HiNetParams(n=4, theta=1, num_heads=1, T=1, phases=1), seed=0
        ).trace
        data = trace_to_dict(trace)
        data["rounds"][0]["roles"] = "hqmm"
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_null_head_of_roundtrips(self):
        snap = Snapshot.from_edges(
            2, [(0, 1)],
            roles=[Role.HEAD, Role.MEMBER],
            head_of=[0, None],
        )
        from repro.graphs.trace import GraphTrace

        back = trace_from_dict(trace_to_dict(GraphTrace([snap])))
        assert back.snapshot(0).head(1) is None


class TestVizCorners:
    def test_unaffiliated_nodes_listed(self):
        snap = Snapshot.from_edges(
            3, [(0, 1)],
            roles=[Role.HEAD, Role.MEMBER, Role.MEMBER],
            head_of=[0, 0, None],
        )
        out = render_clusters(snap)
        assert "unaffiliated: 2" in out

    def test_no_gateway_line_when_none(self):
        snap = Snapshot.from_edges(
            2, [(0, 1)],
            roles=[Role.HEAD, Role.MEMBER],
            head_of=[0, 0],
        )
        assert "gateways" not in render_clusters(snap)


class TestRunnerRecord:
    def test_row_roundtrip_through_markdown(self):
        scenario = hinet_interval_scenario(
            n0=20, theta=6, k=2, alpha=2, L=2, seed=41,
        )
        rec = run_algorithm1(scenario)
        md = records_to_markdown([rec.row()])
        assert "| algorithm |" in md
        assert str(rec.tokens_sent) in md

    def test_scenario_metadata_carried(self):
        scenario = hinet_interval_scenario(
            n0=20, theta=6, k=2, alpha=2, L=2, seed=41,
        )
        rec = run_algorithm1(scenario)
        assert rec.scenario == scenario.name
        assert rec.n == 20 and rec.k == 2
