"""Unit-disk connectivity: positions → per-round communication graphs.

Two nodes are neighbours iff their Euclidean distance is at most the radio
``radius`` — the standard wireless connectivity abstraction the paper's
system model assumes ("neighborhood … is determined by the communication
range of the wireless transmission").

Neighbour finding uses :class:`scipy.spatial.cKDTree` when scipy is
installed (``O(n log n)``-ish per round, and no quadratic intermediate at
all) and otherwise falls back to a vectorised upper-triangle distance
computation — ``n(n−1)/2`` squared distances without ever materialising
the full ``n × n`` matrix.  :func:`unit_disk_trace` optionally patches
disconnected rounds so that the 1-interval connectivity precondition of
Theorem 2 holds.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from ..sim.topology import Snapshot
from ..graphs.trace import GraphTrace

try:  # scipy is an optional dependency throughout the library
    from scipy.spatial import cKDTree as _KDTree
except ImportError:  # pragma: no cover - exercised only without scipy
    _KDTree = None

__all__ = ["unit_disk_edges", "unit_disk_snapshot", "unit_disk_trace"]


def _pairs_triangle(pts: np.ndarray, radius: float) -> List[tuple]:
    """Upper-triangle pair scan: ``n(n−1)/2`` squared distances, no (n, n)
    matrix.  Row ``u`` is compared against ``pts[u+1:]`` in one shot."""
    r2 = radius * radius
    out: List[tuple] = []
    n = len(pts)
    for u in range(n - 1):
        d = pts[u + 1:] - pts[u]
        close = np.nonzero(d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] <= r2)[0]
        out.extend((u, int(v)) for v in (close + u + 1))
    return out


def unit_disk_edges(positions: np.ndarray, radius: float) -> List[tuple]:
    """Edge list (``u < v``, sorted) of the unit-disk graph over ``(n, 2)``
    positions."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {pts.shape}")
    if _KDTree is not None and len(pts) >= 2:
        pairs = _KDTree(pts).query_pairs(r=radius, output_type="ndarray")
        pairs.sort(axis=1)  # guarantee u < v
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return [(int(u), int(v)) for u, v in pairs[order]]
    return _pairs_triangle(pts, radius)


def unit_disk_snapshot(positions: np.ndarray, radius: float) -> Snapshot:
    """One round's unit-disk topology as a :class:`Snapshot`."""
    return Snapshot.from_edges(len(positions), unit_disk_edges(positions, radius))


def _connect(n: int, edges: List[tuple]) -> List[tuple]:
    """Add minimal bridge edges joining connected components.

    Deterministic: components are joined through their lowest-id nodes, so
    the patch does not consume randomness and traces stay reproducible.
    """
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    comps = [min(c) for c in nx.connected_components(g)]
    if len(comps) <= 1:
        return edges
    comps.sort()
    bridges = [(comps[i], comps[i + 1]) for i in range(len(comps) - 1)]
    return edges + bridges


def unit_disk_trace(
    positions: np.ndarray,
    radius: float,
    ensure_connected: bool = False,
) -> GraphTrace:
    """Per-round unit-disk graphs for a ``(rounds, n, 2)`` trajectory array.

    Parameters
    ----------
    positions:
        Output of e.g. :meth:`repro.mobility.waypoint.RandomWaypoint.run`.
    radius:
        Radio range.
    ensure_connected:
        Patch each disconnected round with deterministic bridge edges (a
        long-range link between component representatives) so the trace is
        1-interval connected.  Real deployments achieve this with higher
        density; the patch keeps sparse test scenarios usable.
    """
    traj = np.asarray(positions, dtype=float)
    if traj.ndim != 3 or traj.shape[2] != 2:
        raise ValueError(
            f"positions must have shape (rounds, n, 2), got {traj.shape}"
        )
    rounds, n = traj.shape[0], traj.shape[1]
    snaps = []
    for r in range(rounds):
        edges = unit_disk_edges(traj[r], radius)
        if ensure_connected and n > 1:
            edges = _connect(n, edges)
        snaps.append(Snapshot.from_edges(n, edges))
    return GraphTrace(snapshots=snaps, extend="hold")
