"""Declarative algorithm registry: runs as data, not hand-written helpers.

Every dissemination algorithm the repo implements is described by one
:class:`AlgorithmSpec` — its canonical name, the scenario parameters it
consumes, the model class its guarantee assumes, its theorem-derived
round budget, and how to build the per-node factory.  The implementation
packages register their specs *at import*: :mod:`repro.core.specs`,
:mod:`repro.baselines.specs` and :mod:`repro.multihop.specs` each call
:func:`register` when loaded, so ``import repro`` is enough to populate
the registry.

Consumers never hardcode algorithm lists again: the experiment layer
resolves specs by name (``execute("algorithm1", scenario)``), the CLI
enumerates them (``repro list-algorithms``), and the result cache keys
runs by ``(spec name, spec version, scenario content, engine,
overrides)``.  Adding an algorithm is one ``register(AlgorithmSpec(...))``
call — sweeps, tables, Pareto frontiers, replication and the CLI pick it
up with no further wiring.

The module is deliberately dependency-light (no imports from ``sim`` or
``experiments``) so any layer can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "AlgorithmSpec",
    "RunPlan",
    "all_specs",
    "get_spec",
    "register",
    "spec_names",
]


@dataclass
class RunPlan:
    """A fully-resolved execution plan produced by :attr:`AlgorithmSpec.plan`.

    Attributes
    ----------
    factory:
        The engine node factory, ``factory(node, k, initial) -> NodeAlgorithm``.
    max_rounds:
        The round budget this run is entitled to (the theorem bound for
        guaranteed algorithms, a measurement horizon for best-effort ones).
    key_params:
        The resolved, JSON-scalar algorithm parameters (``T``, ``M``,
        seeds, flags …) — exactly what the result cache must key on so a
        parameter change invalidates the cached cell.
    stop_when_complete:
        Default omniscient-stop behaviour for this algorithm (best-effort
        baselines are measured to completion; guaranteed ones run their
        full bound).  An explicit ``stop_when_complete=`` argument to
        ``execute`` overrides it.
    label:
        Row label for this concrete parameterisation (e.g. ``"3-active
        flood"``); defaults to the spec's display name.
    phase_length:
        The algorithm's phase length ``T`` in rounds, when it runs in
        phases (``None`` otherwise).  Consumed by the observability
        layer: phase-aware provenance queries
        (:meth:`repro.obs.CausalTrace.phase_of`) and the per-phase
        head-progress monitor.
    progress_alpha:
        The per-phase progress parameter α the algorithm's guarantee
        promises each stable head (Theorem 1); ``None`` when the
        algorithm makes no such claim.  Together with ``phase_length``
        this arms :class:`repro.obs.HeadProgressMonitor`.
    """

    factory: Callable
    max_rounds: int
    key_params: Dict[str, object] = field(default_factory=dict)
    stop_when_complete: bool = False
    label: Optional[str] = None
    phase_length: Optional[int] = None
    progress_alpha: Optional[int] = None


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declarative description of one runnable dissemination algorithm.

    Attributes
    ----------
    name:
        Canonical registry key (kebab-case, e.g. ``"klo-interval"``).
    display_name:
        Human-readable label used in result tables.
    family:
        Implementation layer: ``"core"`` (the paper's algorithms),
        ``"baseline"`` (related work), or ``"multihop"`` (extensions).
    guarantee:
        ``"guaranteed"`` — completes within its bound on its model class —
        or ``"best-effort"``.
    model_class:
        The dynamic-network model the guarantee assumes (informational;
        surfaced by ``repro list-algorithms``).
    required_params:
        Scenario ``params`` keys the plan consumes; validated before
        execution so a mis-matched scenario fails with a clear error.
    plan:
        ``plan(scenario, **overrides) -> RunPlan``.  Derives the round
        budget from the scenario's model parameters exactly as the
        corresponding theorem prescribes and builds the node factory.
    overrides:
        Keyword overrides the plan accepts (e.g. ``("rounds", "seed")``);
        anything else passed to ``execute`` is rejected.
    version:
        Bumped on any semantic change to the algorithm or its plan;
        part of every cache key, so stale results can never be replayed.
    fastpath:
        Whether the factory advertises a vectorised kernel
        (:mod:`repro.sim.fastpath`) via its ``fastpath`` tag.
    columnar:
        Whether that kernel also runs on the columnar tier
        (:mod:`repro.sim.columnar`) — packed bit-matrix state, sharded
        delivery, ``engine="columnar"``.  Implies ``fastpath``.
    seeded:
        Whether the algorithm itself consumes randomness (gossip, RLNC);
        such specs accept a ``seed`` override that joins the cache key.
    families:
        Scenario families (:attr:`repro.experiments.Scenario.family`) the
        spec is validated against: ``"benign"`` is mandatory, and most
        specs also tolerate ``"lossy"`` and ``"churn"`` (the engine-level
        link seam degrades them gracefully).  ``"adversarial"`` is opted
        into only by algorithms whose round budget is meaningful on
        materialized lower-bound traces.  Surfaced as a column by
        ``repro list-algorithms``.
    description:
        One-line summary for ``repro list-algorithms``.
    """

    name: str
    display_name: str
    family: str
    guarantee: str
    model_class: str
    required_params: Tuple[str, ...]
    plan: Callable[..., RunPlan]
    overrides: Tuple[str, ...] = ()
    version: int = 1
    fastpath: bool = False
    columnar: bool = False
    seeded: bool = False
    families: Tuple[str, ...] = ("benign", "lossy", "churn")
    description: str = ""

    def __post_init__(self) -> None:
        if self.family not in ("core", "baseline", "multihop"):
            raise ValueError(f"unknown family {self.family!r}")
        if self.guarantee not in ("guaranteed", "best-effort"):
            raise ValueError(f"unknown guarantee {self.guarantee!r}")
        if self.columnar and not self.fastpath:
            raise ValueError(
                f"{self.name!r}: columnar=True requires fastpath=True "
                "(the columnar tier reuses the fastpath kernel tags)"
            )
        if "benign" not in self.families:
            raise ValueError(
                f"{self.name!r}: families must include 'benign', "
                f"got {self.families!r}"
            )
        unknown_fams = set(self.families) - {
            "benign", "lossy", "churn", "adversarial"
        }
        if unknown_fams:
            raise ValueError(
                f"{self.name!r}: unknown scenario families {sorted(unknown_fams)}"
            )

    def validate_scenario(self, scenario) -> None:
        """Raise unless the scenario fits: family supported, params present."""
        fam = getattr(scenario, "family", "benign")
        if fam not in self.families:
            raise ValueError(
                f"scenario {scenario.name!r} is of family {fam!r}, which "
                f"{self.name!r} does not support "
                f"(supported: {', '.join(self.families)})"
            )
        missing = [p for p in self.required_params if p not in scenario.params]
        if missing:
            raise KeyError(
                f"scenario {scenario.name!r} lacks parameter(s) "
                f"{', '.join(repr(m) for m in missing)} required by "
                f"{self.name!r} (model class {self.model_class}; "
                f"available: {sorted(scenario.params)})"
            )

    def envelope(self):
        """The spec's analytical :class:`~repro.analysis.CostEnvelope`.

        Imported lazily so the registry stays dependency-light; returns
        ``None`` when no envelope is registered (or sympy is absent).
        """
        try:
            from .analysis import envelope_for
        except ImportError:  # pragma: no cover - sympy is a declared dep
            return None
        return envelope_for(self.name)

    def row(self) -> Dict[str, object]:
        """Flat dict for ``repro list-algorithms`` output."""
        env = self.envelope()
        phase_length = alpha = bound = "-"
        if env is not None:
            import sympy

            bound = f"{env.kind}: {sympy.sstr(env.rounds)}"
            if env.phase_length is not None:
                phase_length = sympy.sstr(env.phase_length)
            if env.alpha is not None:
                alpha = sympy.sstr(env.alpha)
        return {
            "name": self.name,
            "family": self.family,
            "guarantee": self.guarantee,
            "model_class": self.model_class,
            "requires": ",".join(self.required_params) or "-",
            "overrides": ",".join(self.overrides) or "-",
            "fastpath": self.fastpath,
            "columnar": self.columnar,
            "families": ",".join(self.families),
            "phase_length": phase_length,
            "alpha": alpha,
            "bound": bound,
            "version": self.version,
        }


_REGISTRY: Dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add a spec to the registry; duplicate names are an error.

    Returns the spec so registration modules can also re-export it.
    """
    if spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_registered() -> None:
    """Import the spec modules of every implementation layer.

    Normally a no-op — the package ``__init__`` files import their
    ``specs`` modules — but guards consumers that import a submodule
    directly without going through the package.
    """
    import repro.baselines.specs  # noqa: F401
    import repro.core.specs  # noqa: F401
    import repro.multihop.specs  # noqa: F401


def get_spec(name: str) -> AlgorithmSpec:
    """Resolve a spec by canonical name (``_`` and ``-`` interchangeable)."""
    _ensure_registered()
    key = name.strip().lower().replace("_", "-")
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"no registered algorithm {name!r} "
            f"(known: {', '.join(spec_names())})"
        ) from None


def all_specs() -> List[AlgorithmSpec]:
    """Every registered spec, sorted by (family, name)."""
    _ensure_registered()
    return sorted(_REGISTRY.values(), key=lambda s: (s.family, s.name))


def spec_names() -> List[str]:
    """Sorted canonical names of all registered algorithms."""
    _ensure_registered()
    return sorted(_REGISTRY)
