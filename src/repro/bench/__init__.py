"""Continuous benchmark fleet: matrixed measurement, history, trends, bisection.

``repro.bench`` grows the single-snapshot ``benchmarks/check_regression.py``
gate into a fleet: a declarative benchmark matrix over {algorithm spec ×
scenario family × n × engine tier × obs level} (:mod:`~repro.bench.matrix`),
executed through the one :func:`repro.experiments.runner.execute` pipeline
(:mod:`~repro.bench.runner`), persisted as an append-only commit-keyed
time series in ``BENCH_engine.json`` (:mod:`~repro.bench.history`),
rendered as cross-commit trend dashboards (:mod:`~repro.bench.trend`) and
— when a gate trips — bisected to the offending (case, engine) pair with
an attached engine-divergence report (:mod:`~repro.bench.bisect`).

The CLI front end is ``repro bench`` (``--quick`` per-PR tier, ``--full``
nightly tier, ``--list`` to scope the matrix without running, ``--report``
for the trend dashboard); CI runs it as the ``bench-fleet`` job.  The
classic per-PR gate (``benchmarks/check_regression.py``) consumes the same
measurement helpers, so the gate and the fleet can never drift apart.
"""

from .bisect import BisectReport, bisect_regression
from .history import (
    current_commit,
    default_bench_path,
    load_bench,
    ordered_history,
    previous_bucket,
    record_bench,
    record_bucket,
    time_ms,
    time_ms_paired,
)
from .matrix import BenchCase, build_scenario, default_matrix, expand, select
from .runner import (
    CaseResult,
    GateViolation,
    equivalent,
    gate_fleet,
    measure_case,
    measure_ratio,
    run_fleet,
)
from .trend import render_trend, trend_series

__all__ = [
    "BenchCase",
    "BisectReport",
    "CaseResult",
    "GateViolation",
    "bisect_regression",
    "build_scenario",
    "current_commit",
    "default_bench_path",
    "default_matrix",
    "equivalent",
    "expand",
    "gate_fleet",
    "load_bench",
    "measure_case",
    "measure_ratio",
    "ordered_history",
    "previous_bucket",
    "record_bench",
    "record_bucket",
    "render_trend",
    "run_fleet",
    "select",
    "time_ms",
    "time_ms_paired",
    "trend_series",
]
