"""Tests for scenario builders and algorithm runners."""

import pytest

from repro.experiments.runner import (
    run_algorithm1,
    run_algorithm1_stable,
    run_algorithm2,
    run_flood_all,
    run_gossip,
    run_kactive,
    run_klo_interval,
    run_klo_one,
    run_netcoding,
)
from repro.experiments.scenarios import (
    hinet_interval_scenario,
    hinet_one_scenario,
    klo_interval_scenario,
    one_interval_scenario,
)
from repro.graphs.properties import is_hinet, is_T_interval_connected


SMALL = dict(n0=30, theta=8, k=4, alpha=2, L=2, seed=11)


class TestScenarioBuilders:
    def test_hinet_interval_verified(self):
        s = hinet_interval_scenario(**SMALL)
        assert is_hinet(s.trace, int(s.params["T"]), int(s.params["L"]))
        assert s.params["T"] == 4 + 2 * 2
        assert s.n == 30
        assert "nm" in s.params and "nr" in s.params

    def test_hinet_one_verified(self):
        s = hinet_one_scenario(n0=20, theta=6, k=3, L=2, seed=5)
        assert is_hinet(s.trace, 1, 2)
        assert is_T_interval_connected(s.trace, 1)
        assert s.params["rounds"] == 19

    def test_klo_interval_scenario(self):
        s = klo_interval_scenario(n0=20, k=3, alpha=2, L=2, seed=5)
        assert is_T_interval_connected(s.trace, int(s.params["T"]), windows="blocks")

    def test_one_interval_scenario(self):
        s = one_interval_scenario(n0=15, k=2, seed=5)
        assert is_T_interval_connected(s.trace, 1)
        assert s.trace.horizon == 14

    def test_initial_assignment_mode(self):
        s = hinet_interval_scenario(assignment="single", **SMALL)
        assert s.initial == {0: frozenset(range(4))}


class TestRunners:
    @pytest.fixture(scope="class")
    def interval(self):
        return hinet_interval_scenario(**SMALL)

    @pytest.fixture(scope="class")
    def one(self):
        return hinet_one_scenario(n0=24, theta=6, k=3, L=2, seed=13)

    def test_algorithm1_record(self, interval):
        rec = run_algorithm1(interval)
        assert rec.complete
        assert rec.bound_rounds == 5 * 8  # (ceil(8/2)+1) phases * T=8
        assert rec.tokens_sent > 0
        row = rec.row()
        assert row["algorithm"].startswith("Algorithm 1")

    def test_algorithm1_stable_smaller_bound(self, interval):
        rec = run_algorithm1_stable(interval)
        assert rec.complete
        assert rec.bound_rounds <= run_algorithm1(interval).bound_rounds

    def test_klo_interval_on_same_trace(self, interval):
        rec = run_klo_interval(interval)
        assert rec.complete

    def test_hinet_beats_klo_in_tokens(self, interval):
        ours = run_algorithm1(interval)
        theirs = run_klo_interval(interval)
        assert ours.tokens_sent < theirs.tokens_sent

    def test_algorithm2_and_klo_one(self, one):
        a2 = run_algorithm2(one)
        k1 = run_klo_one(one)
        assert a2.complete and k1.complete
        assert a2.tokens_sent < k1.tokens_sent

    def test_flood_baselines_run(self, one):
        assert run_flood_all(one).complete
        rec = run_kactive(one, A=3)
        assert rec.rounds > 0

    def test_gossip_and_netcoding_run(self, one):
        g = run_gossip(one, seed=1)
        nc = run_netcoding(one, seed=1)
        assert g.rounds > 0 and nc.rounds > 0

    def test_missing_param_raises(self):
        s = one_interval_scenario(n0=10, k=2, seed=1)
        with pytest.raises(KeyError, match="theta"):
            run_algorithm1(s)
