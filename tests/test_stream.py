"""Streaming telemetry bus (repro.obs.stream): sink backpressure and
drop counting, round decimation, bit-identity of the live stream with
the post-hoc timeline across all three engine tiers, cache-hit replay,
the incremental JSONL writer, the metrics exporter, and the dashboard.
"""

import io
import json
import queue

import pytest

from repro.experiments.runner import execute
from repro.experiments.scenarios import (
    hinet_interval_scenario,
    one_interval_scenario,
)
from repro.obs import (
    BufferSink,
    JsonlStreamSink,
    LiveDashboard,
    MetricsExporter,
    QueueSink,
    RunTimeline,
    TelemetryBus,
    TelemetrySink,
    read_events,
    write_events,
)

ENGINES = ("reference", "fast", "columnar")


def _timeline(rounds=6):
    tl = RunTimeline()
    for r in range(rounds):
        tl.begin_round()
        tl.record_sends("head", r + 1, 2 * r + 1)
        tl.end_round(coverage=3 * r, nodes_complete=r)
    return tl


class _FakeResult:
    def __init__(self, timeline):
        self.timeline = timeline
        self.causal_trace = None
        self.metrics = None


class _BoomSink(TelemetrySink):
    def emit(self, event):
        raise RuntimeError("sink exploded")


class TestBufferSink:
    def test_unbounded_keeps_everything(self):
        sink = BufferSink()
        for i in range(10):
            sink.emit({"type": "round", "round": i})
        assert len(sink.events) == 10 and sink.drops == 0

    def test_bounded_sheds_new_events_contiguously(self):
        # backpressure drops the *new* event: the retained prefix stays
        # contiguous, like an interrupted run rather than a gappy one
        sink = BufferSink(maxsize=3)
        for i in range(8):
            sink.emit({"type": "round", "round": i})
        assert [e["round"] for e in sink.events] == [0, 1, 2]
        assert sink.drops == 5

    def test_of_type_filters(self):
        sink = BufferSink()
        sink.emit({"type": "run"})
        sink.emit({"type": "round", "round": 0})
        assert [e["type"] for e in sink.of_type("round")] == ["round"]

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            BufferSink(maxsize=0)


class TestQueueSink:
    def test_full_queue_counts_drops_without_blocking(self):
        q = queue.Queue(maxsize=2)
        sink = QueueSink(q)
        for i in range(5):
            sink.emit({"round": i})
        assert sink.drops == 3
        assert [e["round"] for e in QueueSink.drain(q)] == [0, 1]

    def test_drain_empties_queue(self):
        q = queue.Queue()
        QueueSink(q).emit({"x": 1})
        assert QueueSink.drain(q) == [{"x": 1}]
        assert QueueSink.drain(q) == []


class TestTelemetryBus:
    def test_decimate_validated(self):
        with pytest.raises(ValueError, match="decimate"):
            TelemetryBus(decimate=0)

    def test_sink_errors_contained(self):
        good = BufferSink()
        bus = TelemetryBus([_BoomSink(), good])
        bus.publish({"type": "round", "round": 0})
        assert bus.sink_errors == 1
        assert len(good.events) == 1  # later sinks still served

    def test_drops_aggregate_across_sinks(self):
        bus = TelemetryBus([BufferSink(maxsize=1), BufferSink(maxsize=2)])
        for i in range(4):
            bus.publish({"round": i})
        assert bus.drops == (4 - 1) + (4 - 2)

    def test_decimation_publishes_every_nth_round(self):
        sink = BufferSink()
        bus = TelemetryBus([sink], decimate=3)
        bus.replay(_timeline(rounds=10))
        assert [e["round"] for e in sink.of_type("round")] == [0, 3, 6, 9]

    def test_end_run_backfills_decimated_final_round(self):
        tl = _timeline(rounds=10)  # 9 % 4 != 0: decimation skips the end
        sink = BufferSink()
        bus = TelemetryBus([sink], decimate=4)
        bus.replay(tl)
        bus.end_run(_FakeResult(tl))
        assert [e["round"] for e in sink.of_type("round")] == [0, 4, 8, 9]
        assert sink.events[-1]["type"] == "summary"

    def test_end_run_is_idempotent(self):
        tl = _timeline()
        sink = BufferSink()
        bus = TelemetryBus([sink])
        bus.replay(tl)
        bus.end_run(_FakeResult(tl))
        bus.end_run(_FakeResult(tl))
        assert len(sink.of_type("summary")) == 1

    def test_alert_encodes_violation(self):
        class Violation:
            monitor = "coverage"
            round = 7
            message = "coverage decreased"

        sink = BufferSink()
        TelemetryBus([sink]).alert(Violation())
        assert sink.events == [{
            "type": "alert", "monitor": "coverage", "round": 7,
            "message": "coverage decreased",
        }]


class TestEngineStreaming:
    """Attaching a bus never changes a run; the stream is bit-identical."""

    def _scenario(self):
        return hinet_interval_scenario(n0=24, theta=8, k=3, alpha=2, L=2,
                                       seed=3, verify=False)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_streamed_rounds_match_timeline(self, engine):
        scenario = self._scenario()
        plain = execute("algorithm1", scenario, engine=engine)
        sink = BufferSink()
        bus = TelemetryBus([sink])
        streamed = execute("algorithm1", scenario, engine=engine, stream=bus)
        assert streamed.result.metrics == plain.result.metrics
        assert sink.of_type("round") == list(streamed.result.timeline.events())
        assert bus.drops == 0
        footer = sink.of_type("summary")[-1]
        assert footer["rounds"] == streamed.result.metrics.rounds
        assert footer["tokens_sent"] == streamed.tokens_sent

    def test_stream_requires_telemetry(self):
        with pytest.raises(ValueError, match="obs"):
            execute("algorithm1", self._scenario(), obs="off",
                    stream=TelemetryBus([BufferSink()]))

    def test_monitored_run_streams_alerts(self):
        # any monitored run streams one alert per fresh violation; a clean
        # run streams none — either way alert count == violation count
        scenario = one_interval_scenario(n0=12, k=3, seed=1, verify=False)
        sink = BufferSink()
        record = execute("flood-all", scenario, monitor=True,
                         stream=TelemetryBus([sink]))
        assert len(sink.of_type("alert")) == len(record.result.violations)

    def test_trace_run_streams_learn_events(self):
        scenario = self._scenario()
        sink = BufferSink()
        record = execute("algorithm1", scenario, obs="trace",
                         stream=TelemetryBus([sink]))
        learns = sink.of_type("learn")
        assert len(learns) == len(record.result.causal_trace.events)
        assert learns == list(record.result.causal_trace.events_jsonl())

    def test_cache_hit_replays_identical_stream(self, tmp_path):
        scenario = self._scenario()
        first = BufferSink()
        execute("algorithm1", scenario, cache=tmp_path,
                stream=TelemetryBus([first]))
        replayed = BufferSink()
        execute("algorithm1", scenario, cache=tmp_path,
                stream=TelemetryBus([replayed]))
        assert replayed.events == first.events

    def test_sharded_columnar_streams_shard_timings(self, monkeypatch):
        from repro.baselines.flooding import make_flood_new_factory
        from repro.sim.engine import SynchronousEngine

        monkeypatch.setenv("REPRO_COLUMNAR_SHARDS", "2")
        monkeypatch.setenv("REPRO_COLUMNAR_SHARD_PROCESSES", "2")
        scenario = one_interval_scenario(n0=16, k=3, seed=4, verify=False)
        sink = BufferSink()
        engine = SynchronousEngine(engine="columnar",
                                   stream=TelemetryBus([sink]))
        result = engine.run(scenario.trace, make_flood_new_factory(),
                            scenario.k, scenario.initial, 20)
        shard_events = sink.of_type("shard")
        assert shard_events, "sharded run published no shard timings"
        assert {e["shard"] for e in shard_events} == {0, 1}
        assert all(e["ms"] >= 0 and "pid" in e for e in shard_events)
        assert sink.of_type("round") == list(result.timeline.events())


class TestJsonlStreamSink:
    def _stream_run(self, path):
        scenario = hinet_interval_scenario(n0=24, theta=8, k=3, alpha=2,
                                           L=2, seed=3, verify=False)
        sink = JsonlStreamSink(path, run_info={"algorithm": "algorithm1"})
        bus = TelemetryBus([sink])
        record = execute("algorithm1", scenario, stream=bus)
        bus.close()
        return record, sink

    def test_streamed_file_matches_posthoc_export(self, tmp_path):
        streamed_path = tmp_path / "streamed.jsonl"
        record, sink = self._stream_run(streamed_path)
        posthoc_path = tmp_path / "posthoc.jsonl"
        write_events(posthoc_path, record.result.timeline,
                     run_info={"algorithm": "algorithm1"},
                     summary=record.result.metrics.summary())
        streamed = streamed_path.read_text().splitlines()
        posthoc = posthoc_path.read_text().splitlines()
        # the only allowed divergence: the live header cannot know the
        # final round count, the post-hoc one does
        assert len(streamed) == len(posthoc) == sink.lines
        header = json.loads(posthoc[0])
        header.pop("rounds")
        assert json.loads(streamed[0]) == header
        assert streamed[1:] == posthoc[1:]

    def test_interrupted_stream_leaves_valid_partial_file(self, tmp_path):
        # simulate an interrupt: rounds flushed, no footer, sink closed
        path = tmp_path / "partial.jsonl"
        tl = _timeline(rounds=5)
        sink = JsonlStreamSink(path, run_info={"algorithm": "x"})
        bus = TelemetryBus([sink])
        for r in range(3):  # killed after round 2
            bus.publish(tl.round_event(r))
        bus.close()
        parsed = read_events(path)
        assert parsed[0]["type"] == "run"
        assert [e["round"] for e in parsed if e["type"] == "round"] == [0, 1, 2]
        assert not any(e["type"] == "summary" for e in parsed)

    def test_emit_after_close_counts_drops(self, tmp_path):
        sink = JsonlStreamSink(tmp_path / "x.jsonl")
        sink.close()
        sink.emit({"type": "round", "round": 0})
        assert sink.drops == 1


class TestMetricsExporter:
    HEADER = {"type": "run", "algorithm": "a1", "scenario": "s",
              "engine": "fast"}

    def _feed(self, exporter):
        exporter.emit(self.HEADER)
        exporter.emit({"type": "round", "round": 0, "coverage": 10,
                       "nodes_complete": 1, "messages": 4, "tokens": 9})
        exporter.emit({"type": "round", "round": 1, "coverage": 25,
                       "nodes_complete": 3, "messages": 6, "tokens": 11})
        exporter.emit({"type": "alert", "monitor": "m", "round": 1,
                       "message": "x"})
        exporter.emit({"type": "shard", "shard": 0, "ms": 1.0})

    def test_accumulates_counters_and_labels(self):
        exporter = MetricsExporter()
        self._feed(exporter)
        v = exporter.values
        assert v["repro_rounds_total"] == 2
        assert v["repro_coverage"] == 25  # gauge: last round wins
        assert v["repro_messages_total"] == 10  # counter: accumulates
        assert v["repro_tokens_total"] == 20
        assert v["repro_alerts_total"] == 1
        assert v["repro_worker_events_total"] == 1
        assert v["repro_run_complete"] == 0
        exporter.emit({"type": "summary", "rounds": 2})
        assert exporter.values["repro_run_complete"] == 1

    def test_render_is_prometheus_text_format(self):
        exporter = MetricsExporter()
        self._feed(exporter)
        text = exporter.render()
        assert "# HELP repro_rounds_total" in text
        assert "# TYPE repro_rounds_total counter" in text
        assert ('repro_rounds_total{algorithm="a1",engine="fast",'
                'scenario="s"} 2') in text

    def test_textfile_written_atomically_at_close(self, tmp_path):
        path = tmp_path / "metrics.prom"
        exporter = MetricsExporter(path, interval=3600.0)
        exporter.emit(self.HEADER)  # throttled: first write may be deferred
        exporter.close()
        assert "repro_run_complete" in path.read_text()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_write_without_path_rejected(self):
        with pytest.raises(ValueError, match="path"):
            MetricsExporter().write_textfile()


class TestLiveDashboard:
    def _events(self):
        return [
            {"type": "run", "algorithm": "a1", "scenario": "s",
             "engine": "fast", "n": 10, "k": 2},
            {"type": "round", "round": 0, "coverage": 12,
             "nodes_complete": 3, "messages": 4, "tokens": 9,
             "by_role": {"head": {"messages": 4, "tokens": 9}}},
            {"type": "summary", "rounds": 1, "messages": 4, "tokens": 9,
             "completion_round": None},
        ]

    def test_non_tty_emits_plain_lines(self):
        out = io.StringIO()
        dash = LiveDashboard(out=out, interval=0.0)
        for event in self._events():
            dash.emit(event)
        dash.close()
        text = out.getvalue()
        assert "\x1b[" not in text
        assert "a1 s fast · round 0" in text
        assert "coverage" in text and "12/20" in text
        assert "summary: rounds=1" in text

    def test_non_tty_throttles_between_rounds(self):
        now = [0.0]

        def clock():
            return now[0]

        out = io.StringIO()
        dash = LiveDashboard(out=out, interval=10.0, clock=clock)
        dash.emit(self._events()[0])
        for r in range(5):  # all inside one interval: at most one render
            now[0] = 1.0 + r
            dash.emit({"type": "round", "round": r, "coverage": r,
                       "nodes_complete": 0, "messages": 0, "tokens": 0})
        renders = out.getvalue().count("round")
        assert renders <= 1

    def test_tty_mode_redraws_in_place(self):
        out = io.StringIO()
        dash = LiveDashboard(out=out, interval=0.0, ansi=True)
        events = self._events()
        dash.emit(events[0])
        dash.emit(events[1])
        dash.emit(dict(events[1], round=1))
        text = out.getvalue()
        assert "\x1b[2K" in text  # erase-line redraw
        assert "\x1b[" in text and "F" in text  # cursor climbed back up

    def test_close_renders_final_state_without_summary(self):
        out = io.StringIO()
        dash = LiveDashboard(out=out, interval=3600.0)
        dash.emit(self._events()[0])
        dash.emit(self._events()[1])
        dash.close()
        assert "round 0" in out.getvalue()  # interrupted run still shown

    def test_worker_heartbeats_shown_with_lag(self):
        out = io.StringIO()
        dash = LiveDashboard(out=out, interval=0.0)
        dash.emit({"type": "shard", "shard": 1, "status": "deliver",
                   "ms": 0.4})
        dash.emit({"type": "task", "pid": 4242, "item": 0,
                   "status": "start"})
        dash.close()
        text = out.getvalue()
        assert "shard 1 deliver" in text
        assert "worker pid 4242 start" in text
