"""Command-line interface: ``python -m repro <command>``.

Regenerates any paper table/figure or extension sweep from the shell,
without writing a script:

.. code-block:: console

   $ python -m repro list-algorithms        # the algorithm registry
   $ python -m repro run algorithm1 --n0 40 # any registered algorithm
   $ python -m repro run algorithm1 --events out.jsonl  # streamed JSONL
   $ python -m repro run algorithm1 --live  # terminal dashboard on stderr
   $ python -m repro watch out.jsonl --follow  # tail a streamed run live
   $ python -m repro run algorithm1 --monitor  # live invariant monitors
   $ python -m repro explain algorithm1 --token 2  # causal provenance chain
   $ python -m repro report algorithm1 --replications 20  # progress bands
   $ python -m repro profile algorithm1     # wall-clock phase profiling
   $ python -m repro record algorithm1 --out run.json  # replayable recording
   $ python -m repro replay run.json --at 5 --node 3   # time-travel state
   $ python -m repro diff a.json b.json     # first diverging round/node
   $ python -m repro diff --engines algorithm1  # fast vs reference bisect
   $ python -m repro bench --quick          # per-PR benchmark fleet + gate
   $ python -m repro bench --list           # expanded matrix, budgets, tiers
   $ python -m repro bench --report         # cross-commit trend dashboard
   $ python -m repro table3                 # analytic Table 3 + deviations
   $ python -m repro table3 --simulate      # measured counterpart
   $ python -m repro fig3                   # Algorithm-1 walkthrough
   $ python -m repro sweep-n --sizes 40 80 120
   $ python -m repro mobility --nodes 60 --rounds 80

Every command takes ``--seed`` for reproducibility and prints the same
fixed-width tables the benchmark suite persists.  Simulation commands
also take ``--cache DIR`` (or the ``REPRO_RESULT_CACHE`` environment
variable): runs are keyed content-addressed on disk, so repeating a
command — or resuming an interrupted sweep — replays finished cells
without executing them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.analysis import CostParams
from .experiments.figures import (
    fig1_example_network,
    fig2_definition_lattice,
    fig3_walkthrough,
)
from .experiments.report import format_records
from .experiments.sweeps import sweep_alpha_L, sweep_k, sweep_n, sweep_reaffiliation
from .experiments.tables import analytic_table2, analytic_table3, simulated_table3
from .registry import AlgorithmSpec, all_specs, get_spec, spec_names

__all__ = ["build_parser", "main"]

#: Scenario builders ``repro run`` can pair with an algorithm.
_SCENARIOS = ("auto", "hinet-interval", "hinet-one", "klo-interval",
              "one-interval", "dhop", "adversarial")


def _add_cache_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result-cache directory (computed cells replay from disk; "
        "defaults to $REPRO_RESULT_CACHE when set)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from 'Efficient Information "
        "Dissemination in Dynamic Networks' (ICPP 2013).",
    )
    parser.add_argument("--seed", type=int, default=2013,
                        help="master seed for simulated commands")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-algorithms",
                   help="every registered algorithm spec, one row each")

    vm = sub.add_parser(
        "validate-model",
        help="sweep the registry: run every spec on its benign scenario "
        "family and report measured/predicted ratios against the symbolic "
        "Table 2 envelopes (exit 1 if any benign case escapes its bounds)",
    )
    vm.add_argument("--n0", type=int, default=40, help="network size")
    vm.add_argument("--k", type=int, default=5, help="token count")
    vm.add_argument("--engine",
                    choices=["columnar", "fast", "reference"],
                    default="fast")
    vm.add_argument("--algorithms", nargs="+", default=None, metavar="NAME",
                    help="restrict the sweep to these registry names")
    vm.add_argument("--adversarial", action="store_true",
                    help="also sweep the Haeupler-Kuhn adversarial family "
                    "and report the Omega(nk/log n) floor (never gated)")
    vm.add_argument("--markdown", action="store_true",
                    help="emit a markdown table instead of fixed-width text")
    vm.add_argument("--json", default=None, metavar="PATH",
                    help="also write the full ratio table (with per-role "
                    "token totals) as a repro-envelope-ratios JSON document")
    _add_cache_flag(vm)

    def _add_scenario_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--scenario", choices=_SCENARIOS, default="auto",
                         help="scenario family; 'auto' picks the algorithm's "
                         "model class")
        cmd.add_argument("--n0", type=int, default=50, help="network size")
        cmd.add_argument("--theta", type=int, default=None,
                         help="cluster count (default: max(0.3*n0, alpha))")
        cmd.add_argument("--k", type=int, default=5, help="token count")
        cmd.add_argument("--alpha", type=int, default=3,
                         help="stability parameter")
        cmd.add_argument("--L", type=int, default=2, help="backbone hop bound")
        cmd.add_argument("--rounds", type=int, default=None,
                         help="override the round budget (where the spec "
                         "allows)")
        cmd.add_argument("--engine",
                         choices=["columnar", "fast", "reference"],
                         default="fast")
        cmd.add_argument("--loss", type=float, default=None, metavar="P",
                         help="i.i.d. per-delivery loss probability "
                         "(lossy scenario family)")
        cmd.add_argument("--loss-seed", type=int, default=0,
                         help="seed for the loss link model's hash stream")
        cmd.add_argument("--burst", type=int, default=None, metavar="LEN",
                         help="with --loss: bursty (Gilbert-Elliott style) "
                         "loss in blocks of LEN rounds instead of i.i.d.")
        cmd.add_argument("--churn", type=float, default=None, metavar="RATE",
                         help="per-round per-node crash probability "
                         "(churn scenario family)")
        cmd.add_argument("--churn-seed", type=int, default=0,
                         help="seed for the churn link model's hash stream")
        cmd.add_argument("--adversary", action="store_true",
                         help="shorthand for --scenario adversarial: run on "
                         "a materialized Haeupler-Kuhn lower-bound trace")

    def _add_run_scenario_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("algorithm", metavar="ALGORITHM",
                         help="registry name (see list-algorithms)")
        _add_scenario_flags(cmd)

    rn = sub.add_parser(
        "run", help="run one registered algorithm on a generated scenario"
    )
    _add_run_scenario_flags(rn)
    rn.add_argument("--events", default=None, metavar="PATH",
                    help="stream the run's telemetry as JSONL structured "
                    "events (one object per line, written incrementally: "
                    "header first, flushed per round — an interrupted run "
                    "leaves a valid partial file)")
    rn.add_argument("--obs",
                    choices=["timeline", "trace", "record", "profile", "off"],
                    default="timeline",
                    help="telemetry level (default: timeline counters; "
                    "'trace' adds the causal first-learn trace; 'record' "
                    "adds a replayable run recording)")
    rn.add_argument("--monitor", action="store_true",
                    help="attach the spec's runtime invariant monitors and "
                    "report any violations (coverage monotonicity, phase "
                    "progress, round budget, (T,L) stability)")
    rn.add_argument("--live", action="store_true",
                    help="render a live terminal dashboard on stderr while "
                    "the run executes (ANSI in-place on a TTY, periodic "
                    "text lines otherwise)")
    rn.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="write a Prometheus-textfile snapshot of the "
                    "stream's counters (updated while running, final at "
                    "exit) for external scrapers")
    rn.add_argument("--stream-decimate", type=int, default=1, metavar="N",
                    help="publish every N-th round to the stream sinks "
                    "(default 1 = every round; the final round is always "
                    "published)")
    _add_cache_flag(rn)

    wt = sub.add_parser(
        "watch",
        help="live terminal view of a streamed --events JSONL file: "
        "progress bars, per-role rates, monitor alerts and worker lag, "
        "following the file as a concurrent run appends to it",
    )
    wt.add_argument("events", metavar="EVENTS_JSONL",
                    help="events file written by 'repro run --events' "
                    "(may still be growing)")
    wt.add_argument("--follow", action="store_true",
                    help="keep watching for new events after EOF until the "
                    "summary footer arrives (or --idle-timeout expires)")
    wt.add_argument("--interval", type=float, default=0.5, metavar="S",
                    help="dashboard refresh / follow poll interval in "
                    "seconds (default: 0.5)")
    wt.add_argument("--idle-timeout", type=float, default=30.0, metavar="S",
                    help="with --follow: give up after S seconds without "
                    "new events (default: 30)")
    wt.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="also maintain a Prometheus-textfile snapshot of "
                    "the watched counters")

    ex = sub.add_parser(
        "explain",
        help="causal provenance: how a token reached a node — per-hop "
        "senders, roles and phases, plus critical path vs the α·L bound",
    )
    _add_run_scenario_flags(ex)
    ex.add_argument("--token", type=int, default=0,
                    help="token id to explain (default: 0)")
    ex.add_argument("--node", type=int, default=None,
                    help="destination node (default: the last node to learn "
                    "the token — the longest wait)")
    _add_cache_flag(ex)

    rp = sub.add_parser(
        "report",
        help="cross-run dashboard: replicate one algorithm across seeds and "
        "render percentile progress bands + per-role message totals",
    )
    _add_run_scenario_flags(rp)
    rp.add_argument("--replications", type=int, default=10,
                    help="independent seeded scenarios to aggregate")
    rp.add_argument("--processes", type=int, default=1,
                    help="worker processes (1 = serial)")
    rp.add_argument("--markdown", action="store_true",
                    help="emit GitHub-flavoured markdown instead of plain text")
    _add_cache_flag(rp)

    pf = sub.add_parser(
        "profile",
        help="profile one algorithm run: wall-clock phases (topology build, "
        "property checks, round loop) plus the per-phase telemetry breakdown",
    )
    _add_run_scenario_flags(pf)

    rc = sub.add_parser(
        "record",
        help="run one algorithm at obs='record' and save the deterministic "
        "RunRecording (replayable with 'replay', comparable with 'diff')",
    )
    _add_run_scenario_flags(rc)
    rc.add_argument("--out", required=True, metavar="PATH",
                    help="write the recording here as JSON")
    rc.add_argument("--chrome", default=None, metavar="PATH",
                    help="also export Chrome trace-event JSON (open in "
                    "chrome://tracing or ui.perfetto.dev)")
    _add_cache_flag(rc)

    rpl = sub.add_parser(
        "replay",
        help="inspect a saved recording: overview, or time-travel to the "
        "state at any round (--at), down to one node's token set (--node)",
    )
    rpl.add_argument("recording", metavar="RECORDING",
                     help="recording JSON written by 'record'")
    rpl.add_argument("--at", type=int, default=None, metavar="ROUND",
                     help="reconstruct state at the end of this round "
                     "(-1 = initial state; default: summary of every round)")
    rpl.add_argument("--node", type=int, default=None, metavar="ID",
                     help="print this node's token set instead of the "
                     "global summary")

    df = sub.add_parser(
        "diff",
        help="compare two recordings (or record fast+reference with "
        "--engines) and bisect to the first diverging round and node; "
        "exit 1 on divergence",
    )
    df.add_argument("recordings", nargs="*", metavar="RECORDING",
                    help="two recording JSON files to compare")
    df.add_argument("--engines", default=None, metavar="ALGORITHM",
                    help="record ALGORITHM fresh on both engines and diff "
                    "them instead of reading files")
    _add_scenario_flags(df)
    df.add_argument("--report", default=None, metavar="PATH",
                    help="also write the divergence report here")

    t2 = sub.add_parser("table2", help="analytic cost model (Table 2)")
    t2.add_argument("--n0", type=int, default=100)
    t2.add_argument("--theta", type=int, default=30)
    t2.add_argument("--nm", type=float, default=40)
    t2.add_argument("--nr", type=float, default=3)
    t2.add_argument("--k", type=int, default=8)
    t2.add_argument("--alpha", type=int, default=5)
    t2.add_argument("--L", type=int, default=2)

    t3 = sub.add_parser("table3", help="the paper's numeric instance (Table 3)")
    t3.add_argument("--simulate", action="store_true",
                    help="also run the measured counterpart")
    t3.add_argument("--n0", type=int, default=100)
    _add_cache_flag(t3)

    sub.add_parser("fig1", help="example clustered network (Figure 1)")
    sub.add_parser("fig2", help="definition lattice (Figure 2)")
    sub.add_parser("fig3", help="Algorithm-1 walkthrough (Figure 3)")

    sn = sub.add_parser("sweep-n", help="cost vs network size (X1)")
    sn.add_argument("--sizes", type=int, nargs="+", default=[40, 80, 120, 160])
    sn.add_argument("--k", type=int, default=6)
    sn.add_argument("--alpha", type=int, default=3)
    _add_cache_flag(sn)

    sk = sub.add_parser("sweep-k", help="cost vs token count (X2a)")
    sk.add_argument("--ks", type=int, nargs="+", default=[2, 4, 8, 16])
    sk.add_argument("--n0", type=int, default=80)
    sk.add_argument("--theta", type=int, default=24)
    _add_cache_flag(sk)

    sr = sub.add_parser("sweep-nr", help="cost vs re-affiliation churn (X2b)")
    sr.add_argument("--ps", type=float, nargs="+",
                    default=[0.0, 0.1, 0.3, 0.6, 0.9])
    sr.add_argument("--n0", type=int, default=60)
    sr.add_argument("--theta", type=int, default=18)
    _add_cache_flag(sr)

    ab = sub.add_parser("ablation", help="alpha/L design ablation (X3a)")
    ab.add_argument("--alphas", type=int, nargs="+", default=[1, 2, 5])
    ab.add_argument("--Ls", type=int, nargs="+", default=[1, 2])
    _add_cache_flag(ab)

    mo = sub.add_parser("mobility", help="mobility end-to-end pipeline (X4)")
    mo.add_argument("--nodes", type=int, default=60)
    mo.add_argument("--rounds", type=int, default=80)
    mo.add_argument("--radius", type=float, default=160.0)

    ct = sub.add_parser("count", help="network-size estimation (X8)")
    ct.add_argument("--n0", type=int, default=30)
    ct.add_argument("--method", choices=["hierarchical", "flat", "kcommittee"],
                    default="hierarchical")

    pa = sub.add_parser("pareto", help="time/communication Pareto frontier (X12)")
    pa.add_argument("--n0", type=int, default=50)
    pa.add_argument("--k", type=int, default=5)
    _add_cache_flag(pa)

    bn = sub.add_parser(
        "bench",
        help="continuous benchmark fleet: run the matrixed tier, append a "
        "commit-keyed history bucket, gate vs the previous bucket, and "
        "bisect regressions to the offending (case, engine) pair",
    )
    tier = bn.add_mutually_exclusive_group()
    tier.add_argument("--quick", action="store_true",
                      help="the per-PR CI tier (default)")
    tier.add_argument("--full", action="store_true",
                      help="the nightly tier: larger n, reference-engine "
                      "absolute cases, raised obs levels")
    bn.add_argument("--list", action="store_true",
                    help="print the expanded matrix with budgets and tiers "
                    "without running anything")
    bn.add_argument("--report", action="store_true",
                    help="render the cross-commit trend dashboard from the "
                    "recorded history instead of running")
    bn.add_argument("--markdown", action="store_true",
                    help="with --report: emit a markdown table (suitable for "
                    "$GITHUB_STEP_SUMMARY)")
    bn.add_argument("--json", default=None, metavar="PATH",
                    help="bench file to read/append (default: the repo's "
                    "BENCH_engine.json, found walking up from cwd)")
    bn.add_argument("--cases", nargs="+", default=None, metavar="NAME",
                    help="run only these matrix cases (names from --list)")
    bn.add_argument("--repeats", type=int, default=3,
                    help="paired timing repeats per case (default: 3)")
    bn.add_argument("--processes", type=int, default=1,
                    help="worker processes (default 1: paired timing wants "
                    "an otherwise-idle machine)")
    bn.add_argument("--threshold", type=float, default=0.5,
                    help="allowed fractional speedup regression vs the "
                    "previous bucket (default: 0.5)")
    bn.add_argument("--commit", default=None, metavar="LABEL",
                    help="override the history bucket label (default: short "
                    "git commit, '-dirty'-suffixed on an unclean tree)")
    bn.add_argument("--inject-slowdown", action="append", default=[],
                    metavar="CASE:MS",
                    help="testing hook: sleep MS inside the named case's "
                    "timed callable (repeatable)")
    bn.add_argument("--inject-envelope", action="append", default=[],
                    metavar="CASE:FACTOR",
                    help="testing hook: inflate the named case's "
                    "measured/predicted envelope ratios by FACTOR "
                    "(repeatable; a factor pushing a ratio past 1.0 trips "
                    "the envelope gate)")
    bn.add_argument("--envelope-drift", type=float, default=0.25,
                    help="allowed relative drift of a measured/predicted "
                    "envelope ratio vs the previous bucket (default: 0.25)")
    bn.add_argument("--no-gate", action="store_true",
                    help="record the bucket but skip gating (seeding a "
                    "fresh history)")
    bn.add_argument("--bisect", action="store_true",
                    help="on gate failure, re-measure engine siblings and "
                    "name the offending (case, engine) pair")
    bn.add_argument("--bisect-report", default=None, metavar="PATH",
                    help="with --bisect: also write the bisection report "
                    "(and any divergence report) here")
    bn.add_argument("--no-memory", action="store_true",
                    help="skip the tracemalloc peak-memory pass")
    bn.add_argument("--heartbeat", action="store_true",
                    help="print per-case progress heartbeats to stderr "
                    "([bench] case NAME start/done lines) and flag mid-run "
                    "stalls that exceed the case's budget-derived limit")
    bn.add_argument("--stall-after-ms", type=float, default=None,
                    metavar="MS",
                    help="with --heartbeat: flag a case as stalled after MS "
                    "milliseconds (default: derived from the case budget)")
    _add_cache_flag(bn)

    return parser


def _default_scenario(spec: AlgorithmSpec) -> str:
    """Pick the scenario family matching a spec's model class."""
    if spec.family == "multihop":
        return "dhop"
    if spec.model_class.startswith("(T"):
        return "hinet-interval"
    if spec.model_class.startswith("(1"):
        return "hinet-one"
    if spec.model_class.startswith("T-interval"):
        return "klo-interval"
    return "one-interval"


def _resolve_spec(name: str) -> AlgorithmSpec:
    try:
        return get_spec(name)
    except KeyError:
        raise SystemExit(
            f"unknown algorithm {name!r}; known: {', '.join(spec_names())}"
        )


def _build_scenario(args, spec: AlgorithmSpec, profiler=None):
    """Build the scenario ``repro run``/``repro profile`` execute on.

    With a :class:`~repro.obs.Profiler`, generation runs unverified under
    a ``scenario_build`` section and the model-membership checkers run
    separately under ``property_checks`` — the split the profile report
    shows alongside the engine's own round-loop sections.
    """
    from contextlib import nullcontext

    from .experiments.scenarios import (
        churn_scenario,
        dhop_scenario,
        haeupler_kuhn_scenario,
        hinet_interval_scenario,
        hinet_one_scenario,
        klo_interval_scenario,
        lossy_scenario,
        one_interval_scenario,
    )

    kind = _default_scenario(spec) if args.scenario == "auto" else args.scenario
    if getattr(args, "adversary", False):
        kind = "adversarial"
    theta = max(args.n0 * 3 // 10, args.alpha) if args.theta is None else args.theta
    profiled = profiler is not None
    verify = not profiled  # profiled builds time the checkers separately
    build = profiler.section("scenario_build") if profiled else nullcontext()
    with build:
        if kind == "hinet-interval":
            scenario = hinet_interval_scenario(
                n0=args.n0, theta=theta, k=args.k, alpha=args.alpha, L=args.L,
                seed=args.seed, verify=verify,
            )
        elif kind == "hinet-one":
            scenario = hinet_one_scenario(
                n0=args.n0, theta=theta, k=args.k, L=args.L, seed=args.seed,
                verify=verify,
            )
        elif kind == "klo-interval":
            scenario = klo_interval_scenario(
                n0=args.n0, k=args.k, alpha=args.alpha, L=args.L,
                seed=args.seed, verify=verify,
            )
        elif kind == "dhop":
            # the d-hop generator validates every phase internally
            scenario = dhop_scenario(n0=args.n0, k=args.k, L=args.L,
                                     seed=args.seed)
        elif kind == "adversarial":
            scenario = haeupler_kuhn_scenario(
                n0=args.n0, k=args.k, rounds=args.rounds, seed=args.seed,
                verify=verify,
            )
        else:
            scenario = one_interval_scenario(n0=args.n0, k=args.k,
                                             seed=args.seed, verify=verify)
    if profiled and kind != "dhop":
        from .graphs.properties import (
            is_hinet,
            is_T_interval_connected,
            max_interval_connectivity,
        )

        T = int(scenario.params.get("T", 1))
        with profiler.section("property_checks"):
            if kind == "hinet-interval":
                ok = is_hinet(scenario.trace, T, args.L)
            elif kind == "hinet-one":
                ok = is_hinet(scenario.trace, 1, args.L) and \
                    is_T_interval_connected(scenario.trace, 1)
            elif kind == "klo-interval":
                ok = is_T_interval_connected(scenario.trace, T,
                                             windows="blocks")
            elif kind == "adversarial":
                ok = max_interval_connectivity(scenario.trace) >= 1
            else:
                ok = is_T_interval_connected(scenario.trace, 1)
        if not ok:
            raise SystemExit(f"generated {kind} trace failed verification")
    if getattr(args, "loss", None):
        scenario = lossy_scenario(scenario, args.loss, seed=args.loss_seed,
                                  burst_len=args.burst)
    if getattr(args, "churn", None):
        scenario = churn_scenario(scenario, args.churn, seed=args.churn_seed)
    return scenario


def _spec_overrides(args, spec: AlgorithmSpec) -> dict:
    overrides = {}
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if spec.seeded:
        overrides["seed"] = args.seed  # reproducible (and cacheable) run
    return overrides


def _cmd_run(args) -> str:
    from .experiments.runner import execute

    spec = _resolve_spec(args.algorithm)
    scenario = _build_scenario(args, spec)
    streaming = args.events or args.live or args.metrics_out
    if streaming and args.obs == "off":
        raise SystemExit(
            "--events/--live/--metrics-out require telemetry; drop --obs off"
        )
    bus = events_sink = None
    if streaming:
        from .obs import (
            JsonlStreamSink,
            LiveDashboard,
            MetricsExporter,
            TelemetryBus,
        )

        sinks = []
        if args.events:
            events_sink = JsonlStreamSink(args.events, run_info={
                "algorithm": spec.display_name,
                "scenario": scenario.name,
                "n": scenario.n,
                "k": scenario.k,
                "engine": args.engine,
            })
            sinks.append(events_sink)
        if args.live:
            sinks.append(LiveDashboard(out=sys.stderr))
        if args.metrics_out:
            sinks.append(MetricsExporter(args.metrics_out))
        bus = TelemetryBus(sinks, decimate=max(1, args.stream_decimate))
    try:
        record = execute(spec, scenario, engine=args.engine, cache=args.cache,
                         obs=args.obs, monitor=args.monitor, stream=bus,
                         **_spec_overrides(args, spec))
    finally:
        # an interrupted run still leaves a valid (partial) events file
        if bus is not None:
            bus.close()
    out = f"scenario: {scenario.name}\n\n" + format_records([record.row()])
    if args.monitor:
        violations = record.result.violations or []
        if violations:
            out += f"\n\nmonitor violations ({len(violations)}):\n"
            out += "\n".join(f"  {v}" for v in violations)
        else:
            out += "\n\nmonitors: no invariant violations"
    if events_sink is not None:
        out += (f"\n\nstreamed {events_sink.lines} events to {args.events}")
        if bus.drops:
            out += f" ({bus.drops} dropped under backpressure)"
    if args.metrics_out:
        out += f"\nmetrics textfile at {args.metrics_out}"
    return out


def _cmd_watch(args) -> str:
    import json
    import time

    from .obs import EVENTS_SCHEMA_VERSION, LiveDashboard, MetricsExporter

    sinks = [LiveDashboard(out=sys.stdout, interval=args.interval)]
    if args.metrics_out:
        sinks.append(MetricsExporter(args.metrics_out))

    def feed(event):
        for sink in sinks:
            sink.emit(event)

    deadline = time.monotonic() + args.idle_timeout
    fh = None
    try:
        while fh is None:
            try:
                fh = open(args.events, "r", encoding="utf-8")
            except FileNotFoundError:
                if not args.follow or time.monotonic() > deadline:
                    raise SystemExit(f"events file not found: {args.events}")
                time.sleep(args.interval)
        seen = 0
        buffer = ""
        done = False
        while not done:
            chunk = fh.read()
            if chunk:
                deadline = time.monotonic() + args.idle_timeout
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line.strip():
                        continue
                    event = json.loads(line)
                    if seen == 0:
                        if event.get("type") != "run":
                            raise SystemExit(
                                f"{args.events}: not an events file "
                                "(first line must be a 'run' header)")
                        version = event.get("schema_version")
                        if version != EVENTS_SCHEMA_VERSION:
                            raise SystemExit(
                                f"{args.events}: schema_version {version!r} "
                                f"(this build reads "
                                f"{EVENTS_SCHEMA_VERSION})")
                    feed(event)
                    seen += 1
                    if event.get("type") == "summary":
                        done = True
                        break
            elif not args.follow:
                break
            elif time.monotonic() > deadline:
                break
            else:
                time.sleep(args.interval)
    finally:
        if fh is not None:
            fh.close()
        for sink in sinks:
            sink.close()
    status = "complete" if done else (
        "idle timeout" if args.follow else "partial")
    return f"watched {seen} events from {args.events} ({status})"


def _format_chain(causal, chain) -> List[str]:
    """Render a provenance chain, one line per hop, origin first."""
    lines = []
    for event in chain:
        phase = causal.phase_of(event.round)
        tag = f"  [phase {phase}]" if phase is not None else ""
        if event.is_origin:
            lines.append(f"  origin    node {event.node} held token "
                         f"{event.token} initially")
        else:
            lines.append(
                f"  round {event.round:<3} node {event.sender} "
                f"({event.sender_role}) -> node {event.node}{tag}"
            )
    return lines


def _cmd_explain(args) -> str:
    from .experiments.runner import execute

    spec = _resolve_spec(args.algorithm)
    scenario = _build_scenario(args, spec)
    record = execute(spec, scenario, engine=args.engine, cache=args.cache,
                     obs="trace", **_spec_overrides(args, spec))
    causal = record.result.causal_trace
    token = args.token
    if not 0 <= token < record.k:
        raise SystemExit(f"token must be in 0..{record.k - 1}")
    events = causal.token_events(token)
    if not events:
        raise SystemExit(f"token {token} was never observed (no origin?)")

    node = args.node
    if node is None:
        learns = [e for e in events if not e.is_origin]
        node = learns[-1].node if learns else events[-1].node
    chain = causal.provenance(node, token)
    if not chain:
        raise SystemExit(f"node {node} never learned token {token} "
                         f"within the budget")

    hops, last_round = causal.critical_path(token)
    alpha = scenario.params.get("alpha")
    L = scenario.params.get("L")
    parts = [
        f"scenario: {scenario.name}",
        f"algorithm: {record.algorithm}  engine: {args.engine}  "
        f"rounds: {record.rounds}",
        "",
        f"provenance of token {token} at node {node} "
        f"({max(len(chain) - 1, 0)} hops):",
        *_format_chain(causal, chain),
        "",
        f"token {token} overall: reached {len(events)}/{record.n} nodes, "
        f"critical path {hops} hops"
        + (f", last first-learn at round {last_round}" if last_round is not None
           else " (never left its origins)"),
    ]
    if alpha is not None and L is not None:
        bound = int(alpha) * int(L)
        verdict = "within" if hops <= bound else "EXCEEDS"
        parts.append(
            f"backbone-hop budget α·L = {alpha}·{L} = {bound}: "
            f"critical path {verdict} the per-phase bound"
        )
    if causal.phase_length:
        parts.append(f"phase structure: T = {causal.phase_length} rounds")
    hop_hist = " ".join(f"{d}:{c}" for d, c in causal.hop_histogram().items())
    lat_hist = " ".join(f"{r}:{c}" for r, c in causal.latency_histogram().items())
    parts += [
        "",
        f"hop histogram (chain length -> pairs): {hop_hist}",
        f"latency histogram (first-learn round -> events): {lat_hist or '(all origins)'}",
    ]
    return "\n".join(parts)


def _report_builder(kind: str, args):
    """Scenario builder + kwargs for one ``repro report`` replication cell.

    Builders are module-level functions and the kwargs are plain dicts,
    so cells stay picklable for ``--processes N``.
    """
    from .experiments import scenarios as sc

    theta = max(args.n0 * 3 // 10, args.alpha) if args.theta is None else args.theta
    if kind == "hinet-interval":
        return sc.hinet_interval_scenario, dict(
            n0=args.n0, theta=theta, k=args.k, alpha=args.alpha, L=args.L,
            verify=False)
    if kind == "hinet-one":
        return sc.hinet_one_scenario, dict(
            n0=args.n0, theta=theta, k=args.k, L=args.L, verify=False)
    if kind == "klo-interval":
        return sc.klo_interval_scenario, dict(
            n0=args.n0, k=args.k, alpha=args.alpha, L=args.L, verify=False)
    if kind == "dhop":
        return sc.dhop_scenario, dict(n0=args.n0, k=args.k, L=args.L)
    return sc.one_interval_scenario, dict(n0=args.n0, k=args.k, verify=False)


def _cmd_report(args) -> str:
    from .experiments.replication import replicate_records
    from .obs import merge_timelines, render_dashboard

    spec = _resolve_spec(args.algorithm)
    if (getattr(args, "loss", None) or getattr(args, "churn", None)
            or getattr(args, "adversary", False)
            or args.scenario == "adversarial"):
        raise SystemExit(
            "repro report replicates benign scenarios only; fault flags "
            "(--loss/--churn/--adversary) are not supported here — use "
            "'repro run' per seed instead"
        )
    kind = _default_scenario(spec) if args.scenario == "auto" else args.scenario
    builder, kwargs = _report_builder(kind, args)
    records = replicate_records(
        spec.name, builder,
        replications=args.replications,
        base_seed=args.seed,
        processes=args.processes,
        cache=args.cache,
        scenario_kwargs=kwargs,
        **_spec_overrides(args, spec),
    )
    bands = merge_timelines([r.result.timeline for r in records])
    title = (f"{spec.display_name} on {kind} "
             f"(n0={args.n0}, k={args.k}, {args.replications} seeds)")
    # predicted analytical band: one representative scenario stands in for
    # the replication cell (seeds vary the trace, not the bound symbols)
    envelope = None
    try:
        from .analysis import predict

        pred = predict(spec, builder(seed=args.seed, **kwargs),
                       **_spec_overrides(args, spec))
        envelope = {"rounds": pred.rounds, "messages": pred.messages,
                    "tokens": pred.tokens}
    except Exception:
        pass  # no envelope / unbound symbols — dashboard renders without
    return render_dashboard(bands, title=title, markdown=args.markdown,
                            envelope=envelope)


def _cmd_profile(args) -> str:
    from .experiments.runner import execute
    from .obs import Profiler

    spec = _resolve_spec(args.algorithm)
    profiler = Profiler()
    scenario = _build_scenario(args, spec, profiler=profiler)
    with profiler.section("round_loop"):
        record = execute(spec, scenario, engine=args.engine, cache=None,
                         obs="profile", **_spec_overrides(args, spec))
    timeline = record.result.timeline
    timeline.profile.update(profiler.seconds)

    T = int(scenario.params.get("T", 1))
    parts = [
        f"scenario: {scenario.name}",
        f"engine: {args.engine}  rounds: {record.rounds}  "
        f"completion: {record.completion_round}  tokens: {record.tokens_sent}",
        "",
        "wall-clock sections (round-loop sections overlap round_loop):",
        format_records(timeline.profile_rows()),
        "",
        f"per-phase breakdown (T={T}):",
        format_records(timeline.phases(T)),
    ]
    return "\n".join(parts)


def _load_recording_or_exit(path: str):
    """Load a recording file, turning failures into readable exits."""
    import json

    from . import io as _io

    try:
        return _io.load_recording(path)
    except FileNotFoundError:
        raise SystemExit(f"recording file not found: {path}")
    except IsADirectoryError:
        raise SystemExit(f"recording path is a directory, not a file: {path}")
    except (json.JSONDecodeError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(
            f"could not read recording {path}: {exc} "
            "(expected JSON written by 'repro record')"
        )


def _cmd_record(args) -> str:
    import json

    from . import io as _io
    from .experiments.runner import execute

    spec = _resolve_spec(args.algorithm)
    scenario = _build_scenario(args, spec)
    record = execute(spec, scenario, engine=args.engine, cache=args.cache,
                     obs="record", **_spec_overrides(args, spec))
    recording = record.result.recording
    _io.save_recording(recording, args.out)
    parts = [
        f"scenario: {scenario.name}",
        f"recorded {recording.rounds_recorded} rounds on engine "
        f"{args.engine!r} -> {args.out}",
        f"n={recording.n} k={recording.k} "
        f"final coverage {recording.coverage_at(recording.rounds_recorded - 1)}"
        f"/{recording.n * recording.k} "
        f"fingerprint {recording.fingerprint()[:16]}",
    ]
    if args.chrome:
        from .obs import to_chrome_trace

        trace = to_chrome_trace(recording, timeline=record.result.timeline)
        with open(args.chrome, "w") as handle:
            json.dump(trace, handle)
        parts.append(
            f"wrote {len(trace['traceEvents'])} Chrome trace events to "
            f"{args.chrome} (open in chrome://tracing or ui.perfetto.dev)"
        )
    return "\n".join(parts)


def _cmd_replay(args) -> str:
    recording = _load_recording_or_exit(args.recording)
    last = recording.rounds_recorded - 1
    meta = recording.meta
    head = [
        f"recording: {args.recording}",
        f"algorithm: {meta.get('algorithm', '?')}  "
        f"scenario: {meta.get('scenario', '?')}  "
        f"engine: {meta.get('engine', '?')}",
        f"n={recording.n} k={recording.k} rounds={recording.rounds_recorded}",
    ]
    if args.at is None and args.node is None:
        rows = []
        for r, state in recording.states():
            if r < 0:
                continue
            delta = recording.round_delta(r)
            rows.append({
                "round": r,
                "messages": len(delta.messages),
                "tokens_sent": sum(m.cost for m in delta.messages),
                "nodes_gaining": len(delta.gained),
                "coverage": sum(len(t) for t in state.values()),
            })
        return "\n".join(head) + "\n\n" + format_records(rows)

    at = last if args.at is None else args.at
    if not -1 <= at <= last:
        raise SystemExit(
            f"--at {at} outside recorded range -1..{last} "
            f"({args.recording} holds {recording.rounds_recorded} rounds)"
        )
    if args.node is not None:
        if not 0 <= args.node < recording.n:
            raise SystemExit(
                f"--node {args.node} outside 0..{recording.n - 1}"
            )
        tokens = sorted(recording.node_state(at, args.node))
        return "\n".join(head + [
            "",
            f"node {args.node} at end of round {at}: "
            f"{len(tokens)}/{recording.k} tokens: {tokens}",
        ])
    state = recording.state_at(at)
    coverage = sum(len(t) for t in state.values())
    complete = sum(1 for t in state.values() if len(t) == recording.k)
    lines = head + [
        "",
        f"state at end of round {at}: coverage {coverage}"
        f"/{recording.n * recording.k}, {complete}/{recording.n} nodes "
        "complete",
    ]
    for v in range(recording.n):
        toks = sorted(state[v])
        lines.append(f"  node {v:>3}: {len(toks)}/{recording.k} {toks}")
    return "\n".join(lines)


def _cmd_diff(args):
    """Returns ``(text, exit_code)`` — 0 identical, 1 divergent."""
    from .obs import diff_recordings

    if args.engines is not None:
        if args.recordings:
            raise SystemExit(
                "pass either two recording files or --engines ALGORITHM, "
                "not both"
            )
        from .obs import diff_engines

        spec = _resolve_spec(args.engines)
        scenario = _build_scenario(args, spec)
        report = diff_engines(spec, scenario, **_spec_overrides(args, spec))
        header = f"scenario: {scenario.name}\n"
    else:
        if len(args.recordings) != 2:
            raise SystemExit(
                "diff needs exactly two recording files "
                "(or --engines ALGORITHM)"
            )
        path_a, path_b = args.recordings
        a = _load_recording_or_exit(path_a)
        b = _load_recording_or_exit(path_b)
        try:
            report = diff_recordings(a, b, label_a=path_a, label_b=path_b)
        except ValueError as exc:
            raise SystemExit(f"recordings are not comparable: {exc}")
        header = ""
    text = header + report.format()
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(text + "\n")
        text += f"\n(report written to {args.report})"
    return text, (0 if report.identical else 1)


def _parse_inject(entries: List[str], flag: str = "--inject-slowdown",
                  unit: str = "MS") -> dict:
    """``CASE:VALUE`` pairs → {case: value}; case names never contain
    colons.  Shared by the fleet's fault-injection hooks."""
    inject = {}
    for entry in entries:
        name, _, value = entry.rpartition(":")
        if not name:
            raise SystemExit(
                f"{flag} wants CASE:{unit}, got {entry!r}"
            )
        try:
            inject[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"{flag} wants a numeric {unit}, got {entry!r}"
            )
    return inject


def _cmd_validate_model(args):
    """Returns ``(text, exit_code)`` — 0 clean, 1 when any benign case
    escaped its analytical envelope."""
    from .analysis import failures, table_rows, validate_model

    try:
        specs = ([_resolve_spec(name).name for name in args.algorithms]
                 if args.algorithms else None)
        rows = validate_model(
            n0=args.n0, k=args.k, seed=args.seed, engine=args.engine,
            cache=args.cache, algorithms=specs,
            include_adversarial=args.adversarial,
        )
    except ImportError as exc:  # pragma: no cover — sympy is a declared dep
        raise SystemExit(f"validate-model needs the analysis tier: {exc}")

    if args.json:
        from .io import save_ratio_table

        save_ratio_table(rows, args.json, meta={
            "n0": args.n0, "k": args.k, "seed": args.seed,
            "engine": args.engine, "adversarial": bool(args.adversarial),
        })

    flat = table_rows(rows)
    if args.markdown:
        keys = list(flat[0].keys()) if flat else []
        lines = ["| " + " | ".join(keys) + " |",
                 "| " + " | ".join("---" for _ in keys) + " |"]
        lines += ["| " + " | ".join(str(row.get(k, "-")) for k in keys) + " |"
                  for row in flat]
        table = "\n".join(lines)
    else:
        table = format_records(flat)

    bad = failures(rows)
    head = (f"validate-model — {len(rows)} case(s) at n0={args.n0}, "
            f"k={args.k}, engine={args.engine!r}")
    parts = [head, "", table, ""]
    if bad:
        for row in bad:
            over = [m for m in ("rounds", "messages", "tokens")
                    if row[f"{m}_ratio"] > 1.0]
            reason = (f"{', '.join(over)} over bound" if over
                      else "guaranteed spec finished incomplete")
            parts.append(
                f"FAIL: {row['algorithm']} on {row['scenario']}: {reason}"
            )
        return "\n".join(parts), 1
    parts.append("OK: every benign-family case inside its Table 2 envelope")
    return "\n".join(parts), 0


def _cmd_bench(args):
    """Returns ``(text, exit_code)`` — 0 clean, 1 on gate violations."""
    from pathlib import Path

    from .bench import (
        bisect_regression,
        current_commit,
        default_bench_path,
        expand,
        gate_fleet,
        load_bench,
        previous_bucket,
        record_bucket,
        render_trend,
        run_fleet,
        select,
    )
    from .bench.matrix import case_rows
    from .bench.runner import fleet_rows

    tier = "full" if args.full else "quick"
    matrix = expand(None)
    cases = select(args.cases, matrix) if args.cases else expand(tier, matrix)
    path = Path(args.json) if args.json else default_bench_path()

    if args.list:
        head = (f"benchmark matrix — tier {tier!r}: {len(cases)} case(s) "
                f"(full matrix: {len(matrix)})")
        return head + "\n\n" + format_records(case_rows(cases)), 0

    if args.report:
        data = load_bench(path)
        return render_trend(data, cases=args.cases,
                            markdown=args.markdown), 0

    inject = _parse_inject(args.inject_slowdown)
    inject_env = _parse_inject(args.inject_envelope,
                               flag="--inject-envelope", unit="FACTOR")
    known = {case.name for case in matrix}
    for flag, mapping in (("--inject-slowdown", inject),
                          ("--inject-envelope", inject_env)):
        unknown = set(mapping) - known
        if unknown:
            raise SystemExit(
                f"{flag} names unknown case(s): {sorted(unknown)}"
            )

    heartbeat = None
    if args.heartbeat:
        def heartbeat(event):
            if event.get("type") != "case":
                return
            status = event.get("status")
            if status == "done":
                detail = f" ({event.get('ms', 0.0):.0f} ms)"
            elif status == "stall":
                detail = (f" STALL: {event.get('elapsed_ms', 0.0):.0f} ms "
                          f"without a result "
                          f"(limit {event.get('stall_after_ms', 0.0):.0f} ms)")
            else:
                detail = ""
            print(f"[bench] case {event.get('case')} {status}{detail}",
                  file=sys.stderr, flush=True)

    results = run_fleet(cases, repeats=args.repeats,
                        processes=args.processes, inject=inject,
                        cache=args.cache, memory=not args.no_memory,
                        inject_envelope=inject_env, heartbeat=heartbeat,
                        stall_after_ms=args.stall_after_ms)

    # resolve the gate baseline *before* recording this run's bucket —
    # a same-label re-run must not gate against itself
    label = args.commit or current_commit(path.parent)
    previous = previous_bucket(load_bench(path), label)
    record_bucket(
        path,
        {result.name: result.stats for result in results},
        commit=args.commit,
        bucket_meta={"tier": tier, "repeats": args.repeats},
    )

    parts = [
        f"benchmark fleet — tier {tier!r}, {len(results)} case(s), "
        f"bucket {label!r} -> {path}",
        "",
        format_records(fleet_rows(results)),
    ]
    if args.no_gate:
        parts.append("\ngate skipped (--no-gate)")
        return "\n".join(parts), 0

    prev_cases = previous[1] if previous else {}
    if previous:
        parts.append(f"\ngating against bucket {previous[0]!r}")
    else:
        parts.append("\nno previous bucket — absolute gates only "
                     "(budgets, equivalence)")
    violations = gate_fleet(results, prev_cases, threshold=args.threshold,
                            envelope_drift=args.envelope_drift)
    if not violations:
        parts.append(f"OK: {len(results)} case(s) within budgets and "
                     f"threshold {args.threshold:.0%}")
        return "\n".join(parts), 0

    parts.append("")
    for violation in violations:
        parts.append(f"FAIL: {violation.format()}")
    if args.bisect:
        reports = bisect_regression(
            violations, matrix, prev_cases,
            repeats=max(args.repeats, 3), inject=inject,
            threshold=args.threshold,
        )
        report_text = "\n\n".join(report.format() for report in reports)
        parts += ["", report_text]
        if args.bisect_report:
            Path(args.bisect_report).write_text(report_text + "\n")
            parts.append(f"\n(bisection report written to "
                         f"{args.bisect_report})")
    return "\n".join(parts), 1


def _cmd_mobility(args) -> str:
    from .baselines.klo import make_klo_one_factory
    from .clustering import hierarchy_stats, maintain_clustering
    from .core.algorithm2 import make_algorithm2_factory
    from .mobility import Field, RandomWaypoint, unit_disk_trace
    from .sim import initial_assignment, run

    n, rounds, k = args.nodes, args.rounds, 6
    field = Field(10 * n, 10 * n)
    traj = RandomWaypoint(n=n, field=field, v_min=10, v_max=40,
                          seed=args.seed).run(rounds)
    flat = unit_disk_trace(traj, radius=args.radius, ensure_connected=True)
    clustered, _ = maintain_clustering(flat)
    hs = hierarchy_stats(clustered)
    init = initial_assignment(k, n, mode="spread")
    ours = run(clustered, make_algorithm2_factory(M=rounds), k=k,
               initial=init, max_rounds=rounds)
    theirs = run(clustered, make_klo_one_factory(M=rounds), k=k,
                 initial=init, max_rounds=rounds)
    rows = [
        {"algorithm": "Algorithm 2 (HiNet)", "tokens": ours.metrics.tokens_sent,
         "completion": ours.metrics.completion_round, "complete": ours.complete},
        {"algorithm": "KLO (1-interval)", "tokens": theirs.metrics.tokens_sent,
         "completion": theirs.metrics.completion_round, "complete": theirs.complete},
    ]
    header = (f"hierarchy: theta={hs.theta}, nm={hs.mean_members:.1f}, "
              f"nr={hs.mean_reaffiliations:.2f}, L={hs.hop_bound_L}\n\n")
    return header + format_records(rows)


def _cmd_count(args) -> str:
    from .baselines.kcommittee import klo_counting
    from .core.counting import count_flat, count_hierarchical
    from .experiments.scenarios import hinet_one_scenario

    n = args.n0
    scenario = hinet_one_scenario(
        n0=n, theta=max(n * 3 // 10, 2), k=1, L=2, seed=args.seed
    )
    if args.method == "kcommittee":
        out = klo_counting(scenario.trace)
        return (
            f"k-committee accepted at k={out.k} "
            f"(true n={n}, guarantee n <= 2k): "
            f"{out.rounds_used} rounds, {out.tokens_sent} tokens"
        )
    fn = count_hierarchical if args.method == "hierarchical" else count_flat
    out = fn(scenario.trace)
    return (
        f"{args.method} count: exact={out.exact} "
        f"(true n={n}), {out.rounds} rounds, {out.tokens_sent} tokens"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list-algorithms":
        print(format_records([spec.row() for spec in all_specs()]))
    elif args.command == "validate-model":
        text, code = _cmd_validate_model(args)
        print(text)
        return code
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "watch":
        print(_cmd_watch(args))
    elif args.command == "explain":
        print(_cmd_explain(args))
    elif args.command == "report":
        print(_cmd_report(args))
    elif args.command == "profile":
        print(_cmd_profile(args))
    elif args.command == "record":
        print(_cmd_record(args))
    elif args.command == "replay":
        print(_cmd_replay(args))
    elif args.command == "diff":
        text, code = _cmd_diff(args)
        print(text)
        return code
    elif args.command == "bench":
        text, code = _cmd_bench(args)
        print(text)
        return code
    elif args.command == "table2":
        params = CostParams(n0=args.n0, theta=args.theta, nm=args.nm,
                            nr=args.nr, k=args.k, alpha=args.alpha, L=args.L)
        print(format_records(analytic_table2(params)))
    elif args.command == "table3":
        print(format_records(analytic_table3()))
        if args.simulate:
            print()
            print(format_records(simulated_table3(seed=args.seed, n0=args.n0,
                                                  cache=args.cache)))
    elif args.command == "fig1":
        _, text = fig1_example_network()
        print(text)
    elif args.command == "fig2":
        _, text = fig2_definition_lattice(seed=args.seed)
        print(text)
    elif args.command == "fig3":
        print(fig3_walkthrough(seed=args.seed))
    elif args.command == "sweep-n":
        print(format_records(sweep_n(ns=args.sizes, k=args.k,
                                     alpha=args.alpha, seed=args.seed,
                                     cache=args.cache)))
    elif args.command == "sweep-k":
        print(format_records(sweep_k(ks=args.ks, n0=args.n0,
                                     theta=args.theta, seed=args.seed,
                                     cache=args.cache)))
    elif args.command == "sweep-nr":
        print(format_records(sweep_reaffiliation(ps=args.ps, n0=args.n0,
                                                 theta=args.theta,
                                                 seed=args.seed,
                                                 cache=args.cache)))
    elif args.command == "ablation":
        print(format_records(sweep_alpha_L(alphas=args.alphas, Ls=args.Ls,
                                           seed=args.seed, cache=args.cache)))
    elif args.command == "mobility":
        print(_cmd_mobility(args))
    elif args.command == "count":
        print(_cmd_count(args))
    elif args.command == "pareto":
        from .experiments.pareto import dissemination_pareto

        rows, frontier = dissemination_pareto(
            n0=args.n0, k=args.k, theta=max(args.n0 * 3 // 10, 2),
            seed=args.seed, cache=args.cache,
        )
        print(format_records(rows))
        print()
        print("frontier:", ", ".join(str(r["algorithm"]) for r in frontier))
    else:  # pragma: no cover — argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
