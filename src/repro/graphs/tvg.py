"""The Time-Varying Graph (TVG) formalism.

Casteigts et al.'s TVG models a dynamic network as
:math:`G = (V, E, \\Gamma, \\rho, \\zeta)` (paper, Section II): a vertex
set, an edge universe, a lifetime divided into rounds, a *presence*
function :math:`\\rho(e, t) \\in \\{0, 1\\}` saying whether edge ``e`` is
available at round ``t``, and a *latency* function :math:`\\zeta(e, t)`
giving the time to cross it.

This class is the formal façade over a concrete
:class:`~repro.graphs.trace.GraphTrace`: it exposes ρ/ζ, the footprint
(union) graph, per-round :mod:`networkx` views, and temporal reachability
(journeys), which underpins the dynamic-diameter computation.  In our
synchronous model latency is uniformly one round (a message sent over a
present edge arrives the same round; crossing towards the next hop takes
the next round), matching the paper's send/receive rounds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

import networkx as nx

from .trace import GraphTrace

__all__ = ["TVG"]

Edge = Tuple[int, int]


def _norm(e: Edge) -> Edge:
    u, v = e
    return (u, v) if u <= v else (v, u)


class TVG:
    """Formal TVG view over a finite trace.

    Parameters
    ----------
    trace:
        The underlying per-round snapshots.
    latency:
        Rounds needed to cross a present edge (ζ); the synchronous model
        uses 1 everywhere and the algorithms assume it.
    """

    def __init__(self, trace: GraphTrace, latency: int = 1) -> None:
        if latency < 1:
            raise ValueError(f"latency must be >= 1 round, got {latency}")
        self.trace = trace
        self.latency = latency

    # -- formal components ------------------------------------------------

    @property
    def n(self) -> int:
        """|V|."""
        return self.trace.n

    @property
    def lifetime(self) -> range:
        """Γ as a range of recorded round indices."""
        return range(self.trace.horizon)

    def rho(self, e: Edge, t: int) -> bool:
        """Presence function: is edge ``e`` available in round ``t``?"""
        u, v = _norm(e)
        return v in self.trace.snapshot(t).adj[u]

    def zeta(self, e: Edge, t: int) -> int:
        """Latency function: rounds to cross ``e`` starting at round ``t``."""
        return self.latency

    # -- derived graphs ---------------------------------------------------

    def snapshot_graph(self, t: int) -> nx.Graph:
        """The round-``t`` topology as a :class:`networkx.Graph`."""
        g = nx.Graph()
        snap = self.trace.snapshot(t)
        g.add_nodes_from(range(snap.n))
        g.add_edges_from(snap.edges())
        return g

    def footprint(self) -> nx.Graph:
        """The union graph: edges present in at least one recorded round."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for snap in self.trace:
            g.add_edges_from(snap.edges())
        return g

    def intersection(self, start: int, stop: int) -> nx.Graph:
        """Edges present in *every* round of ``[start, stop)``.

        This is the candidate universe for the stable witness subgraph Υ in
        the T-interval connectivity definitions.
        """
        if stop <= start:
            raise ValueError(f"empty window [{start}, {stop})")
        common: Optional[FrozenSet[Edge]] = None
        for r in range(start, stop):
            edges = self.trace.snapshot(r).edge_set()
            common = edges if common is None else common & edges
            if not common:
                break
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(common or ())
        return g

    # -- temporal reachability ---------------------------------------------

    def earliest_arrivals(self, source: int, start: int = 0,
                          horizon: Optional[int] = None) -> Dict[int, int]:
        """Foremost-journey arrival rounds from ``source``.

        ``result[v]`` is the earliest round index ``t`` such that information
        originating at ``source`` at the *beginning* of round ``start`` can
        be at ``v`` by the *end* of round ``t``, moving one present edge per
        round (flooding speed — the causal-influence relation of the
        dynamic-diameter literature).  ``result[source] = start - 1`` by
        convention (known before any round).  Unreachable nodes are absent.
        """
        if not (0 <= source < self.n):
            raise ValueError(f"source {source} out of range")
        limit = self.trace.horizon if horizon is None else horizon
        reached = {source: start - 1}
        # NB: a round that adds nothing must not end the search — in a
        # dynamic graph an edge appearing later can still extend reach, so
        # we scan every round up to the horizon (or until everyone is in).
        for t in range(start, limit):
            if len(reached) >= self.n:
                break
            snap = self.trace.snapshot(t)
            new = set()
            for u in reached:
                for v in snap.adj[u]:
                    if v not in reached:
                        new.add(v)
            for v in new:
                reached[v] = t
        return reached

    def flood_time(self, source: int, start: int = 0,
                   horizon: Optional[int] = None) -> Optional[int]:
        """Rounds for a single token at ``source`` to flood everywhere.

        Returns the number of rounds elapsed from ``start`` until all nodes
        are reached, or ``None`` if the horizon is hit first.  In a
        1-interval connected network this is at most ``n - 1`` (O'Dell &
        Wattenhofer; paper, Section II).
        """
        arr = self.earliest_arrivals(source, start=start, horizon=horizon)
        if len(arr) < self.n:
            return None
        last = max(arr.values())
        return last - start + 1
