"""Hierarchy maintenance over a dynamic graph.

The paper assumes "the existence of such hierarchy" maintained by a
clustering layer; this module is that layer.  Given a flat
:class:`~repro.graphs.trace.GraphTrace` (e.g. from the mobility substrate)
it produces a clustered trace — an empirical CTVG — by

1. clustering round 0 from scratch with any base algorithm
   (lowest-ID by default), then
2. *repairing* per round with the Least-Cluster-Change (LCC) policy:

   * an existing head demotes only when it becomes adjacent to a
     lower-id head (it and its members join that head's cluster);
   * a member keeps its head while they stay adjacent; otherwise it joins
     the lowest-id adjacent head, or promotes itself if none is in range;

3. re-selecting gateways each round so heads stay backbone-connected.

The returned :class:`MaintenanceStats` yields the empirical θ, n_m, n_r
and realized L that parameterise the paper's cost model for realistic
workloads.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.topology import Snapshot
from ..graphs.trace import GraphTrace
from .gateways import select_gateways
from .hierarchy import ClusterAssignment
from .lowest_id import lowest_id_clustering

__all__ = ["MaintenanceStats", "maintain_clustering"]

#: Election function: either ``fn(snapshot)`` (history-free, e.g.
#: lowest-ID) or ``fn(snapshot, round, trace)`` (history-aware, e.g. the
#: stability-weighted election) — the pipeline dispatches on arity.
ClusterFn = Callable[..., ClusterAssignment]


def _call_base(base: ClusterFn, snap: Snapshot, r: int, trace: GraphTrace) -> ClusterAssignment:
    params = [
        p for p in inspect.signature(base).parameters.values()
        if p.default is inspect.Parameter.empty
        and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if len(params) >= 3:
        return base(snap, r, trace)
    return base(snap)


@dataclass
class MaintenanceStats:
    """Empirical hierarchy statistics collected during maintenance.

    Attributes
    ----------
    reaffiliations:
        Total member cluster switches (basis of the paper's :math:`n_r`).
    elections:
        Nodes promoted to head after round 0.
    demotions:
        Heads demoted by the LCC rule.
    heads_per_round:
        Head-set size per round.
    members_per_round:
        Plain-member count per round (gateways excluded), averaging to
        :math:`n_m`.
    realized_L:
        Per-round backbone hop bound; ``None`` entries mark rounds whose
        graph could not connect the heads.
    distinct_heads:
        Every node that ever served as head (empirical θ).
    """

    reaffiliations: int = 0
    elections: int = 0
    demotions: int = 0
    heads_per_round: List[int] = field(default_factory=list)
    members_per_round: List[int] = field(default_factory=list)
    realized_L: List[Optional[int]] = field(default_factory=list)
    distinct_heads: set = field(default_factory=set)
    ever_member: set = field(default_factory=set)

    @property
    def theta(self) -> int:
        """Empirical upper bound on head count: distinct heads observed."""
        return len(self.distinct_heads)

    @property
    def mean_members(self) -> float:
        """Empirical :math:`n_m`."""
        if not self.members_per_round:
            return 0.0
        return sum(self.members_per_round) / len(self.members_per_round)

    @property
    def mean_reaffiliations(self) -> float:
        """Empirical :math:`n_r` — re-affiliations per ever-member node."""
        if not self.ever_member:
            return 0.0
        return self.reaffiliations / len(self.ever_member)

    @property
    def max_realized_L(self) -> Optional[int]:
        """Worst per-round backbone hop bound (None if any round failed)."""
        if any(span is None for span in self.realized_L):
            return None
        return max(self.realized_L) if self.realized_L else 0


def _repair(snapshot: Snapshot, prev: ClusterAssignment, stats: MaintenanceStats) -> ClusterAssignment:
    """One round of LCC repair; see module docstring for the rules."""
    n = snapshot.n
    head_of: List[Optional[int]] = list(prev.head_of)

    # 1. LCC demotion: a head adjacent to a lower-id head joins it.
    heads_before = sorted(v for v in range(n) if head_of[v] == v)
    for v in heads_before:
        if head_of[v] != v:
            continue  # already demoted into an earlier head this round
        lower = sorted(u for u in snapshot.adj[v] if u < v and head_of[u] == u)
        if lower:
            head_of[v] = lower[0]
            stats.demotions += 1

    # 2. Member repair: keep the head while adjacent, else rehome/promote.
    for v in range(n):
        h = head_of[v]
        if h == v:
            continue
        if h is not None and head_of[h] == h and h in snapshot.adj[v]:
            continue
        candidates = sorted(u for u in snapshot.adj[v] if head_of[u] == u)
        if candidates:
            head_of[v] = candidates[0]
        else:
            head_of[v] = v
            stats.elections += 1

    return ClusterAssignment(head_of=tuple(head_of))


def maintain_clustering(
    trace: GraphTrace,
    base: ClusterFn = lowest_id_clustering,
    lcc: bool = True,
) -> tuple[GraphTrace, MaintenanceStats]:
    """Cluster a flat trace round-by-round; return (clustered trace, stats).

    Parameters
    ----------
    trace:
        Flat dynamic graph (each round's snapshot without hierarchy).
    base:
        Clustering algorithm for round 0 (and for *every* round when
        ``lcc=False``, i.e. memoryless re-clustering — the high-churn
        baseline for the n_r ablation).
    lcc:
        Repair incrementally with Least-Cluster-Change instead of
        re-clustering from scratch.
    """
    stats = MaintenanceStats()
    snaps: List[Snapshot] = []
    prev: Optional[ClusterAssignment] = None

    for r in range(trace.horizon):
        snap = trace.snapshot(r)
        if prev is None or not lcc:
            assignment = _call_base(base, snap, r, trace)
        else:
            assignment = _repair(snap, prev, stats)

        with_gw, realized = select_gateways(snap, assignment)
        stats.realized_L.append(realized)
        heads = with_gw.heads
        stats.heads_per_round.append(len(heads))
        stats.distinct_heads |= heads
        roles = with_gw.roles()
        plain_members = [v for v in range(snap.n) if with_gw.head_of[v] != v and v not in with_gw.gateways]
        stats.members_per_round.append(len(plain_members))
        stats.ever_member.update(plain_members)

        if prev is not None:
            for v in range(snap.n):
                if (
                    with_gw.head_of[v] != v
                    and prev.head_of[v] is not None
                    and prev.head_of[v] != v
                    and with_gw.head_of[v] != prev.head_of[v]
                ):
                    stats.reaffiliations += 1

        snaps.append(with_gw.annotate(snap))
        prev = assignment

    clustered = GraphTrace(snapshots=snaps, extend=trace.extend)
    clustered.validate_hierarchy()
    return clustered, stats
