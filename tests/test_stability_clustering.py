"""Tests for stability-aware (MOBIC-style) clustering."""

import pytest

from repro.clustering.maintenance import maintain_clustering
from repro.clustering.stability import neighbor_churn, stability_clustering
from repro.graphs.generators.static import path_graph, static_trace
from repro.graphs.trace import GraphTrace
from repro.mobility import Field, RandomWaypoint, unit_disk_trace
from repro.sim.topology import Snapshot


def _churny_trace():
    """Node 0's neighbourhood flaps; nodes 2, 3 are rock solid."""
    a = Snapshot.from_edges(4, [(0, 1), (2, 3), (1, 2)])
    b = Snapshot.from_edges(4, [(0, 2), (2, 3), (1, 2)])
    c = Snapshot.from_edges(4, [(0, 3), (2, 3), (1, 2)])
    return GraphTrace([a, b, c])


class TestNeighborChurn:
    def test_zero_at_round_zero(self):
        trace = _churny_trace()
        assert neighbor_churn(trace, 0) == [0, 0, 0, 0]

    def test_static_trace_zero_churn(self):
        trace = static_trace(path_graph(5), rounds=6)
        assert neighbor_churn(trace, 5) == [0] * 5

    def test_flapping_node_scores_high(self):
        trace = _churny_trace()
        churn = neighbor_churn(trace, 2, window=2)
        # node 0 changed neighbour each round; 2 and 3 saw symmetric churn
        assert churn[0] >= churn[1]
        assert churn[0] > 0

    def test_window_validated(self):
        with pytest.raises(ValueError):
            neighbor_churn(_churny_trace(), 1, window=0)

    def test_window_limits_lookback(self):
        trace = _churny_trace()
        short = neighbor_churn(trace, 2, window=1)
        long = neighbor_churn(trace, 2, window=5)
        assert all(s <= l for s, l in zip(short, long))


class TestStabilityClustering:
    def test_calm_nodes_become_heads(self):
        trace = _churny_trace()
        snap = trace.snapshot(2)
        asg = stability_clustering(snap, 2, trace)
        asg.validate(snap)
        # node 2 or 3 (calm, adjacent pair) should head rather than 0
        assert asg.heads & {1, 2, 3}

    def test_round_zero_falls_back_to_lowest_id(self):
        trace = static_trace(path_graph(5), rounds=3)
        snap = trace.snapshot(0)
        asg = stability_clustering(snap, 0, trace)
        # zero churn everywhere -> id order -> lowest-ID result
        assert asg.heads == frozenset({0, 2, 4})

    def test_pluggable_into_maintenance(self):
        field = Field(300, 300)
        traj = RandomWaypoint(n=20, field=field, v_min=10, v_max=40,
                              seed=23).run(25)
        flat = unit_disk_trace(traj, radius=100, ensure_connected=True)
        clustered, stats = maintain_clustering(flat, base=stability_clustering)
        clustered.validate_hierarchy()
        assert stats.theta >= 1

    def test_memoryless_mode_reelects_with_history(self):
        """lcc=False re-runs the 3-arg base every round — the pure
        stability-aware pipeline."""
        field = Field(300, 300)
        traj = RandomWaypoint(n=18, field=field, v_min=5, v_max=20,
                              seed=29).run(20)
        flat = unit_disk_trace(traj, radius=110, ensure_connected=True)
        clustered, stats = maintain_clustering(
            flat, base=stability_clustering, lcc=False
        )
        clustered.validate_hierarchy()

    def test_two_arg_bases_still_work(self):
        """Arity dispatch must not break history-free elections."""
        from repro.clustering.lowest_id import lowest_id_clustering

        trace = static_trace(path_graph(6), rounds=4)
        clustered, _ = maintain_clustering(trace, base=lowest_id_clustering)
        clustered.validate_hierarchy()
