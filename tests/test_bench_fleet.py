"""Benchmark fleet: matrix, history series, trends, gating and bisection."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench import (
    bisect_regression,
    default_matrix,
    expand,
    gate_fleet,
    load_bench,
    ordered_history,
    previous_bucket,
    record_bucket,
    render_trend,
    run_fleet,
    select,
)
from repro.bench.history import current_commit, record_bench
from repro.bench.matrix import TIERS, build_scenario
from repro.cli import main
from repro.registry import get_spec

FAST_CASE = "algorithm1_benign_n48_fast_timeline"
COL_CASE = "algorithm1_benign_n48_columnar_timeline"


def _load_bench_json_shim():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "_bench_json.py"
    spec = importlib.util.spec_from_file_location("_bench_json", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("_bench_json", module)
    spec.loader.exec_module(module)
    return module


class TestMatrix:
    def test_expansion_is_valid_and_unique(self):
        matrix = default_matrix()
        names = [case.name for case in matrix]
        assert len(set(names)) == len(names)
        for case in matrix:
            spec = get_spec(case.algorithm)
            assert case.family in spec.families
            if case.engine == "columnar":
                assert spec.columnar
            assert ":" not in case.name  # the --inject-slowdown separator
            assert case.budget_ms > 0 and case.memory_budget_mb > 0
            assert set(case.tiers) <= set(TIERS)

    def test_quick_tier_is_a_subset_of_full(self):
        quick = {case.name for case in expand("quick")}
        full = {case.name for case in expand("full")}
        assert quick and quick < full
        assert full == {case.name for case in default_matrix()}

    def test_unknown_tier_and_case_raise(self):
        with pytest.raises(ValueError):
            expand("hourly")
        with pytest.raises(KeyError):
            select(["no_such_case"])

    def test_scenarios_match_case_axes(self):
        for name in (FAST_CASE, "flood-all_adversarial_n48_fast_timeline",
                     "algorithm2_lossy_n48_columnar_timeline"):
            case = select([name])[0]
            scenario = build_scenario(case)
            assert scenario.n == case.n
            assert scenario.k == case.k
            assert scenario.family == case.family


class TestHistory:
    def test_bucket_merge_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        record_bucket(path, {"a": {"median_ms": 1.0}}, commit="c1")
        record_bucket(path, {"b": {"median_ms": 2.0}}, commit="c1")
        # same case again: stat keys merge instead of clobbering
        record_bucket(path, {"a": {"speedup": 3.0}}, commit="c1")
        data = load_bench(path)
        bucket = data["history"]["c1"]
        assert bucket["a"] == {"median_ms": 1.0, "speedup": 3.0}
        assert bucket["b"] == {"median_ms": 2.0}

    def test_ordered_history_uses_seq_not_json_order(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        # labels chosen so sort_keys order (aaa < zzz) fights seq order
        record_bucket(path, {"a": {"median_ms": 1.0}}, commit="zzz")
        record_bucket(path, {"a": {"median_ms": 2.0}}, commit="aaa")
        data = load_bench(path)
        labels = [label for label, _, _ in ordered_history(data)]
        assert labels == ["zzz", "aaa"]
        prev = previous_bucket(data, "aaa")
        assert prev is not None and prev[0] == "zzz"
        # a run never gates against its own label, only other buckets
        assert previous_bucket(data, "zzz")[0] == "aaa"
        assert previous_bucket({"history": {}}, "zzz") is None

    def test_dirty_tree_gets_its_own_bucket(self, tmp_path, monkeypatch):
        from repro.bench import history

        outputs = {
            ("rev-parse", "--short", "HEAD"): "abc1234\n",
            ("status", "--porcelain"): " M src/file.py\n",
        }
        monkeypatch.setattr(
            history, "_git", lambda args, cwd: outputs.get(tuple(args))
        )
        assert current_commit(tmp_path) == "abc1234-dirty"
        outputs[("status", "--porcelain")] = ""
        assert current_commit(tmp_path) == "abc1234"
        path = tmp_path / "BENCH_engine.json"
        record_bucket(path, {"a": {"median_ms": 1.0}})  # clean
        outputs[("status", "--porcelain")] = " M x\n"
        record_bucket(path, {"a": {"median_ms": 9.0}})  # dirty
        history_data = load_bench(path)["history"]
        assert history_data["abc1234"]["a"]["median_ms"] == 1.0
        assert history_data["abc1234-dirty"]["a"]["median_ms"] == 9.0

    def test_record_bench_snapshots_latest_case(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        record_bench(path, "case", {"median_ms": 5.0})
        data = load_bench(path)
        assert data["cases"]["case"]["median_ms"] == 5.0
        assert any("case" in cases for _, cases, _ in ordered_history(data))

    def test_bench_json_shim_round_trip(self, tmp_path, monkeypatch):
        shim = _load_bench_json_shim()
        monkeypatch.setattr(shim, "BENCH_JSON", tmp_path / "BENCH_engine.json")
        shim.record_bench("case", {"median_ms": 5.0})
        shim.record_bench("case", {"speedup": 2.0})
        data = json.loads((tmp_path / "BENCH_engine.json").read_text())
        assert data["cases"]["case"] == {"speedup": 2.0}  # latest snapshot
        merged = [bucket["case"] for label, bucket in data["history"].items()
                  if "case" in bucket]
        assert {"median_ms": 5.0, "speedup": 2.0} in merged


def _synthetic_history(tmp_path) -> Path:
    path = tmp_path / "BENCH_engine.json"
    for label, speedup in (("c1", 2.0), ("c2", 2.2), ("c3", 1.1)):
        record_bucket(
            path,
            {
                FAST_CASE: {"speedup": speedup, "median_ms": 10.0 / speedup},
                "abs_case": {"median_ms": 100.0},
            },
            commit=label,
        )
    return path


class TestTrend:
    def test_text_dashboard(self, tmp_path):
        text = render_trend(load_bench(_synthetic_history(tmp_path)))
        assert "c1 c2 c3" in text
        assert FAST_CASE in text and "[speedup]" in text
        assert "abs_case" in text and "[median_ms]" in text
        assert "Δ vs prev -50.0%" in text  # 2.2 -> 1.1
        assert "p50" in text and "latest 1.10x" in text

    def test_markdown_dashboard(self, tmp_path):
        text = render_trend(load_bench(_synthetic_history(tmp_path)),
                            markdown=True)
        assert text.startswith("### Benchmark fleet trend")
        assert f"| {FAST_CASE} | speedup | 3 " in text
        assert "-50.0%" in text

    def test_empty_and_single_bucket(self, tmp_path):
        assert "no history" in render_trend({"history": {}})
        path = tmp_path / "BENCH_engine.json"
        record_bucket(path, {FAST_CASE: {"speedup": 2.0}}, commit="only")
        text = render_trend(load_bench(path))
        assert "single bucket" in text


class TestFleetEndToEnd:
    def test_quick_run_appends_commit_keyed_bucket(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        rc = main(["bench", "--cases", FAST_CASE, COL_CASE,
                   "--repeats", "1", "--no-memory",
                   "--commit", "c1", "--json", str(path)])
        assert rc == 0
        data = load_bench(path)
        bucket = data["history"]["c1"]
        assert set(bucket) == {"_meta", FAST_CASE, COL_CASE}
        stats = bucket[FAST_CASE]
        assert stats["identical"] is True
        assert stats["rounds"] > 0 and stats["speedup"] > 0
        assert bucket["_meta"]["tier"] == "quick"
        out = capsys.readouterr().out
        assert "no previous bucket" in out and "OK" in out

    def test_injected_slowdown_fails_gate_and_bisect_names_pair(
            self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        assert main(["bench", "--cases", FAST_CASE, COL_CASE,
                     "--repeats", "1", "--no-memory",
                     "--commit", "c1", "--json", str(path)]) == 0
        capsys.readouterr()
        report = tmp_path / "bisect.txt"
        rc = main(["bench", "--cases", FAST_CASE, COL_CASE,
                   "--repeats", "1", "--no-memory",
                   "--commit", "c2", "--json", str(path),
                   "--inject-slowdown", f"{FAST_CASE}:200",
                   "--bisect", "--bisect-report", str(report)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL: [speedup]" in out
        assert f"offender: case={FAST_CASE} engine=fast" in out
        text = report.read_text()
        assert f"case={FAST_CASE} engine=fast" in text
        # the clean sibling is exonerated in the evidence table
        assert COL_CASE in text
        # both runs landed as separate buckets
        assert set(load_bench(path)["history"]) == {"c1", "c2"}


class TestFleetHeartbeat:
    def test_heartbeats_bracket_every_case(self):
        events = []
        results = run_fleet(select([FAST_CASE]), repeats=1, memory=False,
                            heartbeat=events.append)
        assert len(results) == 1
        assert [(e["case"], e["status"]) for e in events] == [
            (FAST_CASE, "start"), (FAST_CASE, "done")]
        assert all(e["type"] == "case" for e in events)
        assert events[-1]["ms"] > 0

    def test_watchdog_flags_slow_case_without_killing_it(self):
        # a 1 ms stall limit trips immediately; the case still finishes
        events = []
        results = run_fleet(select([FAST_CASE]), repeats=1, memory=False,
                            heartbeat=events.append, stall_after_ms=1.0)
        assert len(results) == 1 and results[0].stats["rounds"] > 0
        stalls = [e for e in events if e["status"] == "stall"]
        assert len(stalls) == 1  # flagged once, not once per poll
        assert stalls[0]["case"] == FAST_CASE
        assert stalls[0]["elapsed_ms"] > 1.0
        assert stalls[0]["stall_after_ms"] == 1.0
        assert [e["status"] for e in events][-1] == "done"

    def test_cli_heartbeat_prints_case_lines(self, tmp_path, capsys):
        rc = main(["bench", "--cases", FAST_CASE, "--repeats", "1",
                   "--no-memory", "--no-gate", "--heartbeat",
                   "--json", str(tmp_path / "b.json")])
        assert rc == 0
        err = capsys.readouterr().err
        assert f"[bench] case {FAST_CASE} start" in err
        assert f"[bench] case {FAST_CASE} done (" in err

    def test_cli_heartbeat_stall_line(self, tmp_path, capsys):
        rc = main(["bench", "--cases", FAST_CASE, "--repeats", "1",
                   "--no-memory", "--no-gate", "--heartbeat",
                   "--stall-after-ms", "1",
                   "--json", str(tmp_path / "b.json")])
        assert rc == 0
        err = capsys.readouterr().err
        assert f"[bench] case {FAST_CASE} stall STALL:" in err

    def test_counter_drift_trips_gate_and_attaches_divergence(self, tmp_path):
        results = run_fleet(select([FAST_CASE]), repeats=1, memory=False)
        stats = dict(results[0].stats)
        previous = {FAST_CASE: dict(stats, tokens_sent=stats["tokens_sent"] + 1)}
        violations = gate_fleet(results, previous)
        assert [v.kind for v in violations] == ["counter"]
        reports = bisect_regression(violations, default_matrix(), previous,
                                    repeats=1)
        assert reports[0].kind == "counter"
        assert reports[0].divergence is not None
        # engines actually agree here, and the probe says so
        assert "identical" in reports[0].divergence

    def test_gate_passes_against_own_history(self, tmp_path):
        cases = select([FAST_CASE])
        baseline = run_fleet(cases, repeats=2, memory=False)
        previous = {r.name: dict(r.stats) for r in baseline}
        fresh = run_fleet(cases, repeats=2, memory=False)
        assert gate_fleet(fresh, previous, threshold=0.9) == []

    def test_list_needs_no_execution(self, capsys):
        assert main(["bench", "--list", "--full"]) == 0
        out = capsys.readouterr().out
        assert "budget_ms" in out
        assert FAST_CASE in out
        assert "algorithm1_benign_n160_fast_timeline" in out  # full-only

    def test_report_renders_from_two_buckets(self, tmp_path, capsys):
        path = _synthetic_history(tmp_path)
        assert main(["bench", "--report", "--json", str(path)]) == 0
        assert "c1 c2 c3" in capsys.readouterr().out

    def test_bad_inject_spec_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--cases", FAST_CASE, "--json",
                  str(tmp_path / "b.json"), "--inject-slowdown", "nocolon"])
        with pytest.raises(SystemExit):
            main(["bench", "--cases", FAST_CASE, "--json",
                  str(tmp_path / "b.json"),
                  "--inject-slowdown", "unknown_case:50"])
        with pytest.raises(SystemExit):
            main(["bench", "--cases", FAST_CASE, "--json",
                  str(tmp_path / "b.json"),
                  "--inject-envelope", "unknown_case:50"])


class TestEnvelopeGate:
    def test_benign_case_carries_envelope_columns(self):
        results = run_fleet(select([FAST_CASE]), repeats=1, memory=False)
        stats = results[0].stats
        assert stats["envelope_ok"] is True
        assert stats["envelope_tokens"] >= stats["tokens_sent"]
        for key, counter in (("envelope_ratio_rounds", "rounds"),
                             ("envelope_ratio_messages", "messages_sent"),
                             ("envelope_ratio_tokens", "tokens_sent")):
            assert 0 < stats[key] <= 1.0
            assert stats[key] == pytest.approx(
                stats[counter] / stats[f"envelope_{counter.split('_')[0]}"],
                abs=1e-4)

    def test_adversarial_case_has_no_envelope_gate(self):
        results = run_fleet(select(["flood-all_adversarial_n48_fast_timeline"]),
                            repeats=1, memory=False)
        assert "envelope_ok" not in results[0].stats

    def test_injected_excursion_fails_absolute_gate(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        rc = main(["bench", "--cases", FAST_CASE, "--repeats", "1",
                   "--no-memory", "--commit", "c1", "--json", str(path),
                   "--inject-envelope", f"{FAST_CASE}:100"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL: [envelope]" in out
        assert "exited the analytical envelope" in out
        # the injection scales ratios only: counters stay truthful
        stats = load_bench(path)["history"]["c1"][FAST_CASE]
        assert stats["tokens_sent"] <= stats["envelope_tokens"]
        assert stats["envelope_ratio_tokens"] > 1.0

    def test_ratio_drift_vs_previous_bucket_trips_gate(self):
        results = run_fleet(select([FAST_CASE]), repeats=1, memory=False)
        stats = dict(results[0].stats)
        previous = {FAST_CASE: dict(
            stats,
            envelope_ratio_tokens=stats["envelope_ratio_tokens"] / 2,
        )}
        violations = gate_fleet(results, previous)
        assert [v.kind for v in violations] == ["envelope"]
        assert "ratio drifted 100%" in violations[0].message
        # a wider allowance waves the same drift through
        assert gate_fleet(results, previous, envelope_drift=1.5) == []

    def test_trend_dashboard_shows_envelope_columns(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        record_bucket(path, {FAST_CASE: {
            "speedup": 2.0, "envelope_ratio_tokens": 0.62,
            "envelope_ok": True,
        }}, commit="c1")
        record_bucket(path, {FAST_CASE: {
            "speedup": 2.1, "envelope_ratio_tokens": 1.31,
            "envelope_ok": False,
        }}, commit="c2")
        text = render_trend(load_bench(path))
        assert "envelope: measured/predicted tokens 1.310  OUTSIDE" in text
        md = render_trend(load_bench(path), markdown=True)
        assert "| env ratio | in env |" in md
        assert "1.31" in md and "**NO**" in md

    def test_report_without_history_prints_message(self, tmp_path, capsys):
        """Satellite: an empty or missing history file yields a clear
        one-liner, not a traceback."""
        rc = main(["bench", "--report",
                   "--json", str(tmp_path / "missing.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no history buckets recorded yet" in out
        empty = tmp_path / "empty.json"
        empty.write_text('{"history": {}}')
        assert main(["bench", "--report", "--json", str(empty)]) == 0
        assert "no history buckets" in capsys.readouterr().out
