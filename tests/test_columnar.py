"""Columnar-tier equivalence: ``engine="columnar"`` must be bit-identical
to the fast path (and hence the reference engine) for every supported
algorithm and scenario family, sharded or not, and must fall back
silently everywhere else.  Also covers the packed-bitset codecs, the
array-native :class:`~repro.sim.topology.CSRNetwork`, and the
array-native topology builders."""

import argparse
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.baselines.flooding import make_flood_all_factory, make_flood_new_factory
from repro.baselines.gossip import make_gossip_factory
from repro.baselines.klo import make_klo_interval_factory, make_klo_one_factory
from repro.core.algorithm1 import make_algorithm1_factory
from repro.core.algorithm1_stable import make_algorithm1_stable_factory
from repro.core.algorithm2 import make_algorithm2_factory
from repro.experiments.runner import execute
from repro.experiments.scenarios import (
    hinet_interval_scenario,
    hinet_one_scenario,
    one_interval_scenario,
)
from repro.graphs.generators.static import clustered_star_arrays, ring_lattice_arrays
from repro.obs.monitors import default_monitors
from repro.registry import all_specs
from repro.sim import columnar
from repro.sim.engine import SynchronousEngine
from repro.sim.topology import CSRNetwork, Snapshot


def _hinet(seed, n0=50, theta=16, k=5, alpha=4, L=2):
    return hinet_interval_scenario(
        n0=n0, theta=theta, k=k, alpha=alpha, L=L, seed=seed, verify=False
    )


def _hinet1(seed, n0=40, theta=12, k=4):
    return hinet_one_scenario(n0=n0, theta=theta, k=k, seed=seed, verify=False)


def _flat(seed, n0=30, k=4):
    return one_interval_scenario(n0=n0, k=k, seed=seed, verify=False)


def _case_id(case):
    return case[0]


#: Nightly CI widens the seed sweep (REPRO_EQUIV_SEEDS=6); default 2.
SEEDS = list(range(1, 1 + int(os.environ.get("REPRO_EQUIV_SEEDS", "2"))))

#: Engines the columnar tier is cross-checked against.  Nightly CI sets
#: REPRO_EQUIV_ENGINES="fast,reference" to triangulate all three tiers;
#: the default compares against the fast path only (which tests/
#: test_fastpath.py already pins to the reference engine).
BASELINE_ENGINES = [
    e.strip()
    for e in os.environ.get("REPRO_EQUIV_ENGINES", "fast").split(",")
    if e.strip()
]

# (name, scenario builder, factory builder, max_rounds) — mirrors
# tests/test_fastpath.py so the three tiers are pinned on the same grid.
CASES = [
    ("alg1", _hinet, lambda s: make_algorithm1_factory(T=12, M=5), 60),
    ("alg1-strict", _hinet, lambda s: make_algorithm1_factory(T=12, M=5, strict=True), 60),
    ("alg1-stable", _hinet, lambda s: make_algorithm1_stable_factory(T=12, M=5), 60),
    ("alg2", _hinet1, lambda s: make_algorithm2_factory(M=s.n - 1), 45),
    ("klo-interval", _hinet, lambda s: make_klo_interval_factory(T=12, M=5), 60),
    ("klo-one", _flat, lambda s: make_klo_one_factory(M=s.n - 1), 35),
    ("klo-one-clustered", _hinet1, lambda s: make_klo_one_factory(M=s.n - 1), 45),
    ("flood-all", _flat, lambda s: make_flood_all_factory(), 35),
    ("flood-new", _flat, lambda s: make_flood_new_factory(), 35),
    ("flood-new-clustered", _hinet, lambda s: make_flood_new_factory(), 40),
]


def _columnar_ran(result) -> bool:
    """Whether the columnar tier (not a fallback) executed the run.

    The columnar loop stamps its kernel sections into the profile, so a
    profile with ``spmm_delivery`` can only come from the columnar tier.
    """
    return "spmm_delivery" in result.timeline.profile


def assert_columnar_equivalent(scenario, factory, max_rounds, **engine_kwargs):
    """Run columnar + baseline engines and compare every observable."""
    col = SynchronousEngine(engine="columnar", **engine_kwargs).run(
        scenario.trace, factory, scenario.k, scenario.initial, max_rounds
    )
    for engine in BASELINE_ENGINES:
        kwargs = dict(engine_kwargs)
        if engine != "reference":
            kwargs["engine"] = engine
        base = SynchronousEngine(**kwargs).run(
            scenario.trace, factory, scenario.k, scenario.initial, max_rounds
        )
        assert col.n == base.n and col.k == base.k
        assert col.outputs == base.outputs
        assert col.complete == base.complete
        assert col.metrics == base.metrics
        assert col.timeline == base.timeline
    assert col.trace is None and col.algorithms is None
    return col


class TestEquivalence:
    @pytest.mark.parametrize("case", CASES, ids=_case_id)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical(self, case, seed):
        name, scen_fn, fac_fn, max_rounds = case
        scenario = scen_fn(seed)
        assert_columnar_equivalent(scenario, fac_fn(scenario), max_rounds)

    def test_stop_when_complete(self):
        scenario = _flat(4)
        factory = make_flood_all_factory()
        fast = SynchronousEngine(engine="fast").run(
            scenario.trace, factory, scenario.k, scenario.initial, 40,
            stop_when_complete=True,
        )
        col = SynchronousEngine(engine="columnar").run(
            scenario.trace, factory, scenario.k, scenario.initial, 40,
            stop_when_complete=True,
        )
        assert col.metrics.rounds == fast.metrics.rounds
        assert col.outputs == fast.outputs

    def test_wide_token_sets(self):
        # k > 64 exercises multi-word bitset rows through the spmm kernel
        n, k = 20, 130
        scenario = _flat(8, n0=n, k=4)  # topology only; assignment built here
        initial = {v: frozenset(range(v * 7, min(v * 7 + 7, k))) for v in range(n)}
        factory = make_flood_all_factory()
        fast = SynchronousEngine(engine="fast").run(
            scenario.trace, factory, k, initial, 25
        )
        col = SynchronousEngine(engine="columnar").run(
            scenario.trace, factory, k, initial, 25
        )
        assert col.outputs == fast.outputs
        assert col.metrics == fast.metrics


class TestRegistryWideIdentity:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_columnar_matches_fast_per_spec(self, spec):
        """Every registered algorithm: metrics, timeline, and (at
        obs="record") the full RunRecording agree columnar⇄fast — or the
        columnar tier falls back and trivially agrees."""
        args = argparse.Namespace(scenario="auto", n0=24, theta=7, k=3,
                                  alpha=3, L=2, seed=5)
        scenario = cli._build_scenario(args, spec)
        overrides = {"seed": 9} if spec.seeded else {}
        fast = execute(spec, scenario, engine="fast", obs="record",
                       **overrides)
        col = execute(spec, scenario, engine="columnar", obs="record",
                      **overrides)
        assert col.result.outputs == fast.result.outputs
        assert col.result.metrics == fast.result.metrics
        rec_fast, rec_col = fast.result.recording, col.result.recording
        assert rec_fast is not None and rec_col is not None
        assert rec_col == rec_fast
        assert rec_col.fingerprint() == rec_fast.fingerprint()
        last = rec_col.rounds_recorded - 1
        assert rec_col.state_at(last) == col.result.outputs


class TestSharded:
    def test_serial_shards_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_SHARDS", "3")
        for seed in SEEDS:
            scenario = _hinet(seed)
            assert_columnar_equivalent(
                scenario, make_algorithm1_factory(T=12, M=5), 60
            )

    def test_shard_count_does_not_change_results(self, monkeypatch):
        scenario = _flat(6)
        factory = make_flood_new_factory()

        def go():
            return SynchronousEngine(engine="columnar").run(
                scenario.trace, factory, scenario.k, scenario.initial, 30
            )

        monkeypatch.delenv("REPRO_COLUMNAR_SHARDS", raising=False)
        unsharded = go()
        results = {}
        for shards in (2, 4, 7):
            monkeypatch.setenv("REPRO_COLUMNAR_SHARDS", str(shards))
            results[shards] = go()
        for shards, res in results.items():
            assert res.outputs == unsharded.outputs, f"shards={shards}"
            assert res.metrics == unsharded.metrics, f"shards={shards}"

    def test_process_pool_shards_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_SHARDS", "2")
        monkeypatch.setenv("REPRO_COLUMNAR_SHARD_PROCESSES", "2")
        scenario = _flat(3)
        assert_columnar_equivalent(scenario, make_flood_new_factory(), 30)


class TestDispatch:
    def test_supported_kinds_match_fastpath(self):
        from repro.sim import fastpath

        assert columnar.supported_kinds() == fastpath.supported_kinds()

    def test_columnar_tier_actually_runs(self):
        scenario = _flat(3)
        result = SynchronousEngine(engine="columnar", obs="profile").run(
            scenario.trace, make_flood_all_factory(), scenario.k,
            scenario.initial, 10
        )
        assert _columnar_ran(result)
        assert result.algorithms is None

    def test_untagged_factory_falls_back(self):
        scenario = _flat(3)
        factory = make_gossip_factory(seed=1)
        assert not hasattr(factory, "fastpath")
        result = SynchronousEngine(engine="columnar").run(
            scenario.trace, factory, scenario.k, scenario.initial, 10
        )
        # reference path ran: per-node objects are present
        assert result.algorithms is not None

    def test_loss_runs_natively_and_matches_reference(self):
        # the LinkModel seam runs lossy channels on the columnar tier
        # itself (no fastpath fallback), bit-identical to the reference
        scenario = _flat(3)
        result = SynchronousEngine(engine="columnar", obs="profile",
                                   loss_p=0.25, loss_seed=11).run(
            scenario.trace, make_flood_all_factory(), scenario.k,
            scenario.initial, 10
        )
        assert _columnar_ran(result)
        ref = SynchronousEngine(loss_p=0.25, loss_seed=11).run(
            scenario.trace, make_flood_all_factory(), scenario.k,
            scenario.initial, 10
        )
        assert result.outputs == ref.outputs
        assert result.metrics == ref.metrics

    def test_latency_falls_back(self):
        scenario = _flat(3)
        result = SynchronousEngine(engine="columnar", obs="profile",
                                   latency=2).run(
            scenario.trace, make_flood_all_factory(), scenario.k,
            scenario.initial, 10
        )
        assert not _columnar_ran(result)

    def test_obs_trace_falls_back(self):
        scenario = _flat(3)
        result = SynchronousEngine(engine="columnar", obs="trace").run(
            scenario.trace, make_flood_all_factory(), scenario.k,
            scenario.initial, 10
        )
        assert result.causal_trace is not None

    def test_monitors_fall_back(self):
        scenario = _flat(3)
        result = SynchronousEngine(engine="columnar", obs="profile").run(
            scenario.trace, make_flood_all_factory(), scenario.k,
            scenario.initial, 10, monitors=default_monitors(),
        )
        assert not _columnar_ran(result)

    def test_invalid_engine_mode_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SynchronousEngine(engine="warp")


class TestPackedCodecs:
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=149),
                          max_size=12),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_round_trip(self, rows):
        k = 150
        bits = columnar.pack_rows(rows, k)
        assert bits.shape == (len(rows), columnar.words_for(k))
        assert bits.dtype == np.uint64
        assert columnar.unpack_rows(bits) == [tuple(sorted(r)) for r in rows]

    def test_pack_single_tokens_matches_pack_rows(self):
        tokens = np.array([0, 63, 64, 127, -1, 5])
        k = 128
        single = columnar.pack_single_tokens(tokens, k)
        rows = [frozenset() if t < 0 else frozenset({int(t)})
                for t in tokens]
        assert np.array_equal(single, columnar.pack_rows(rows, k))

    def test_pack_single_tokens_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            columnar.pack_single_tokens(np.array([4]), 4)

    def test_words_for(self):
        assert [columnar.words_for(k) for k in (1, 64, 65, 128, 129)] == \
            [1, 1, 2, 2, 3]


class TestCSRNetwork:
    def test_snapshot_matches_arrays(self):
        arrs = ring_lattice_arrays(12, 4)
        net = CSRNetwork(arrs)
        assert net.n == 12
        snap = net.snapshot(0)
        assert isinstance(snap, Snapshot)
        for v in range(12):
            start, end = int(arrs.indptr[v]), int(arrs.indptr[v + 1])
            assert snap.adj[v] == frozenset(
                int(u) for u in arrs.indices[start:end]
            )
        assert net.snapshot(0) is snap  # memoized

    def test_clustered_star_is_valid_hierarchy(self):
        net = CSRNetwork(clustered_star_arrays(40, 5))
        snap = net.snapshot(0)
        snap.validate_hierarchy()

    def test_sequence_of_snapshots_bounds_checked(self):
        arrs = [ring_lattice_arrays(10, 2), ring_lattice_arrays(10, 4)]
        net = CSRNetwork(arrs)
        assert net.horizon == 2
        net.snapshot_arrays(1)
        with pytest.raises(ValueError, match="outside"):
            net.snapshot_arrays(2)

    def test_single_arrays_repeat_forever(self):
        net = CSRNetwork(ring_lattice_arrays(10, 2))
        assert net.snapshot_arrays(0) is net.snapshot_arrays(999)

    def test_columnar_equals_fast_on_csr_network(self):
        n, k = 64, 8
        net = CSRNetwork(clustered_star_arrays(n, 8))
        initial = {v: frozenset({v % k}) for v in range(n)}
        factory = make_algorithm1_factory(T=6, M=4)
        fast = SynchronousEngine(engine="fast").run(net, factory, k,
                                                    initial, 36)
        col = SynchronousEngine(engine="columnar").run(net, factory, k,
                                                       initial, 36)
        assert col.outputs == fast.outputs
        assert col.metrics == fast.metrics
        assert col.timeline == fast.timeline


class TestArrayBuilders:
    def test_ring_lattice_arrays_validates(self):
        with pytest.raises(ValueError, match="even"):
            ring_lattice_arrays(10, 3)
        with pytest.raises(ValueError, match="n > degree"):
            ring_lattice_arrays(4, 4)

    def test_clustered_star_arrays_validates(self):
        with pytest.raises(ValueError, match="heads"):
            clustered_star_arrays(10, 2)
        with pytest.raises(ValueError, match="n > theta"):
            clustered_star_arrays(5, 5)

    def test_run_columnar_low_level_entry(self):
        """The benchmark entry point: packed initial state, no frozenset
        materialisation, coverage tracked from popcounts."""
        n, k = 200, 16
        net = CSRNetwork(ring_lattice_arrays(n, 4))
        TA0 = columnar.pack_single_tokens(np.arange(n) % k, k)
        res = columnar.run_columnar(
            SynchronousEngine(engine="columnar"), net, "flood_new", {},
            k, TA0.copy(), 40, materialize_outputs=False,
        )
        assert res.outputs == {}
        assert res.complete
        assert res.metrics.rounds <= 40

        full = columnar.run_columnar(
            SynchronousEngine(engine="columnar"), net, "flood_new", {},
            k, TA0.copy(), 40,
        )
        assert full.complete
        assert all(full.outputs[v] == frozenset(range(k)) for v in range(n))
        assert full.metrics == res.metrics
