"""Static topology builders.

These return :class:`networkx.Graph` objects on nodes ``0 .. n-1`` and are
used three ways: as building blocks for dynamic generators, as degenerate
"T = ∞" scenarios, and as the geometry under the clustering algorithms'
unit tests.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ...sim.rng import SeedLike, make_rng
from ...sim.topology import Snapshot
from ..trace import GraphTrace

__all__ = [
    "complete_graph",
    "erdos_renyi",
    "grid_graph",
    "path_graph",
    "random_connected_graph",
    "random_spanning_tree",
    "ring_graph",
    "static_trace",
]


def path_graph(n: int) -> nx.Graph:
    """A path 0–1–…–(n-1): diameter n-1, the slowest connected topology."""
    return nx.path_graph(n)


def ring_graph(n: int) -> nx.Graph:
    """A cycle on ``n`` nodes (n >= 3)."""
    if n < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {n}")
    return nx.cycle_graph(n)


def complete_graph(n: int) -> nx.Graph:
    """The complete graph — one-round dissemination for any algorithm."""
    return nx.complete_graph(n)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A rows × cols grid relabelled onto ``0 .. rows*cols - 1`` (row-major)."""
    g = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r in range(rows) for c in range(cols)}
    return nx.relabel_nodes(g, mapping)


def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> nx.Graph:
    """G(n, p) with an explicit seed (may be disconnected)."""
    rng = make_rng(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    if n < 2 or p <= 0:
        return g
    upper = np.triu_indices(n, k=1)
    mask = rng.random(len(upper[0])) < p
    g.add_edges_from(zip(upper[0][mask].tolist(), upper[1][mask].tolist()))
    return g


def random_spanning_tree(n: int, seed: SeedLike = None) -> nx.Graph:
    """A uniform-ish random labelled tree on ``n`` nodes (random Prüfer sequence)."""
    rng = make_rng(seed)
    if n <= 0:
        raise ValueError(f"need at least one node, got {n}")
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
        return g
    if n == 2:
        g = nx.Graph()
        g.add_edge(0, 1)
        return g
    prufer = rng.integers(0, n, size=n - 2).tolist()
    return nx.from_prufer_sequence(prufer)


def random_connected_graph(n: int, p: float, seed: SeedLike = None) -> nx.Graph:
    """G(n, p) forced connected by overlaying a random spanning tree.

    Used where a generator must guarantee 1-interval connectivity but still
    wants G(n, p)-like density.
    """
    rng = make_rng(seed)
    g = erdos_renyi(n, p, seed=rng)
    g.add_edges_from(random_spanning_tree(n, seed=rng).edges())
    return g


def static_trace(graph: nx.Graph, rounds: int = 1, extend: str = "hold") -> GraphTrace:
    """Wrap a static graph as a (trivially ∞-interval-connected) trace."""
    return GraphTrace.constant(Snapshot.from_networkx(graph), rounds=rounds, extend=extend)
