"""The Kuhn–Lynch–Oshman comparison algorithms (paper reference [7]).

Two baselines, matching the two KLO rows of Table 2:

* :class:`KLOIntervalNode` — token dissemination under T-interval
  connectivity: execution proceeds in phases of ``T`` rounds; every node
  broadcasts the minimum-id token it has not yet broadcast *this phase*;
  the per-phase sent set is cleared at phase boundaries.  This is the
  token-forwarding core of KLO's procedure ``disseminate`` — the stable
  connected subgraph pipelines tokens, so with ``T ≥ k + α·L`` each known
  token gains at least ``α·L`` new nodes per phase, giving the paper's
  ⌈n₀/(αL)⌉-phase accounting.  (KLO interleave this with a counting/
  k-committee protocol to learn n; the paper's cost comparison concerns
  only the dissemination traffic, which is what we reproduce.)
* :class:`KLOOneIntervalNode` — the 1-interval connected regime: every
  node broadcasts its entire token set every round; n−1 rounds suffice
  since at least one new (node, token) pair appears per round while any is
  missing.  Cost (n₀−1)·n₀·k, the flat-flooding bill the paper contrasts.

Both are *flat* algorithms: they ignore roles and run on any trace.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.messages import Message
from ..sim.node import NodeAlgorithm, RoundContext

__all__ = [
    "KLOIntervalNode",
    "KLOOneIntervalNode",
    "make_klo_interval_factory",
    "make_klo_one_factory",
]


class KLOIntervalNode(NodeAlgorithm):
    """KLO token forwarding in phases of ``T`` rounds (see module docstring).

    Parameters
    ----------
    T:
        Phase length; the scenario must be T-interval connected.
    M:
        Number of phases (⌈n₀/(αL)⌉ for the Table 2 regime).
    """

    def __init__(self, node: int, k: int, initial_tokens: frozenset, T: int, M: int) -> None:
        super().__init__(node, k, initial_tokens)
        if T < 1 or M < 1:
            raise ValueError(f"T and M must be >= 1, got T={T}, M={M}")
        self.T = T
        self.M = M
        self.TS: set[int] = set()  # broadcast already, this phase

    def send(self, ctx: RoundContext) -> Sequence[Message]:
        if ctx.round_index // self.T >= self.M:
            return []
        if ctx.round_index % self.T == 0:
            self.TS.clear()
        unsent = self.TA - self.TS
        if not unsent:
            return []
        t = min(unsent)
        self.TS.add(t)
        return [Message.broadcast(self.node, {t}, tag="klo")]

    def receive(self, ctx: RoundContext, inbox: Sequence[Message]) -> None:
        for msg in inbox:
            self.TA |= msg.tokens

    def finished(self, ctx: RoundContext) -> bool:
        return ctx.round_index + 1 >= self.M * self.T


class KLOOneIntervalNode(NodeAlgorithm):
    """Full-set broadcast every round for ``M`` rounds (1-interval regime)."""

    def __init__(self, node: int, k: int, initial_tokens: frozenset, M: int) -> None:
        super().__init__(node, k, initial_tokens)
        if M < 1:
            raise ValueError(f"M must be >= 1, got {M}")
        self.M = M

    def send(self, ctx: RoundContext) -> Sequence[Message]:
        if ctx.round_index >= self.M or not self.TA:
            return []
        return [Message.broadcast(self.node, self.TA, tag="klo1")]

    def receive(self, ctx: RoundContext, inbox: Sequence[Message]) -> None:
        for msg in inbox:
            self.TA |= msg.tokens

    def finished(self, ctx: RoundContext) -> bool:
        return ctx.round_index + 1 >= self.M


def make_klo_interval_factory(T: int, M: int):
    """Engine factory for :class:`KLOIntervalNode`."""

    def factory(node: int, k: int, initial: frozenset) -> KLOIntervalNode:
        return KLOIntervalNode(node, k, initial, T=T, M=M)

    # advertise the vectorised equivalent (see repro.sim.fastpath)
    factory.fastpath = ("klo_interval", {"T": T, "M": M})
    return factory


def make_klo_one_factory(M: int):
    """Engine factory for :class:`KLOOneIntervalNode`."""

    def factory(node: int, k: int, initial: frozenset) -> KLOOneIntervalNode:
        return KLOOneIntervalNode(node, k, initial, M=M)

    # advertise the vectorised equivalent (see repro.sim.fastpath)
    factory.fastpath = ("klo_one", {"M": M})
    return factory
