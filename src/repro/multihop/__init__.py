"""Multi-hop (d-hop) clusters — the paper's named future-work extension.

Clusters of radius ``d`` with intra-cluster relay trees:

* :func:`~repro.multihop.formation.dhop_clustering` — greedy lowest-ID
  d-hop cluster formation on any graph;
* :func:`~repro.multihop.scenario.generate_dhop` — verified d-hop
  hierarchical scenarios (phase-stable trees + backbone + churn);
* :class:`~repro.multihop.dissemination.DHopDisseminationNode` — the
  d-hop generalisation of Algorithm 2 (tree-relayed uploads/downloads).

``benchmarks/bench_multihop.py`` measures the cost of radius: larger
``d`` means fewer heads and longer relay chains — the trade-off the
paper's Section VI poses as an open question.
"""

from .algorithm1_dhop import DHopAlgorithm1Node, make_dhop_algorithm1_factory
from .dissemination import DHopDisseminationNode, make_dhop_factory
from .formation import DHopAssignment, dhop_clustering
from .scenario import DHopParams, DHopScenario, generate_dhop
from . import specs  # noqa: F401  (registers the algorithm specs at import)

__all__ = [
    "DHopAlgorithm1Node",
    "DHopAssignment",
    "DHopDisseminationNode",
    "DHopParams",
    "DHopScenario",
    "dhop_clustering",
    "generate_dhop",
    "make_dhop_algorithm1_factory",
    "make_dhop_factory",
]
