"""Extension X10 — clusters over edge-Markovian dynamics.

The paper's future work asks for other flat dynamic models extended with
clusters; this bench runs the clustered-EMDG study: hierarchy maintained
over Markovian link churn, classified empirically into the (T, L)
taxonomy, with the dissemination saving measured against volatility.
"""

from __future__ import annotations

from repro.experiments.emdg_study import emdg_cluster_study
from repro.experiments.report import format_records


def test_emdg_cluster_study(benchmark, save_result):
    rows = benchmark.pedantic(
        emdg_cluster_study,
        kwargs=dict(
            pq_grid=((0.02, 0.05), (0.05, 0.2), (0.1, 0.5)),
            n=40, rounds=60, k=4, seed=71,
        ),
        rounds=1,
        iterations=1,
    )
    text = "X10 — cluster hierarchy over edge-Markovian dynamics (n=40, k=4)\n\n"
    text += format_records(rows)
    save_result("emdg_clusters", text)
    print("\n" + text)

    assert all(r["alg2_complete"] for r in rows)
    # the saving survives across the volatility grid
    for r in rows:
        assert r["alg2_comm"] < r["klo_comm"], r
    # more volatile links -> more re-affiliation (the cost model's n_r knob)
    assert rows[0]["nr"] <= rows[-1]["nr"]


def test_lemma2_empirical(benchmark, save_result):
    """Bonus validation artifact: Lemma 2's per-phase head-progress
    guarantee measured on an instrumented Algorithm-1 run."""
    from repro.experiments.scenarios import hinet_interval_scenario
    from repro.experiments.validation import check_lemma2

    scenario = hinet_interval_scenario(
        n0=40, theta=10, k=4, alpha=2, L=2, churn_p=0.0, seed=79,
    )
    records = benchmark.pedantic(
        check_lemma2, args=(scenario,), rounds=1, iterations=1
    )
    sample = [
        {
            "phase": r.phase, "token": r.token,
            "heads_before": r.heads_before, "heads_after": r.heads_after,
            "required_new": r.required, "satisfied": r.satisfied,
        }
        for r in records[:12]
    ]
    text = (
        "Lemma 2 validation — heads newly learning each token per phase\n"
        f"(showing 12 of {len(records)} premise instances; "
        "guarantee = floor((T-k)/L) saturating)\n\n"
    )
    text += format_records(sample)
    save_result("lemma2_validation", text)
    print("\n" + text)

    assert records and all(r.satisfied for r in records)
