"""Gateway selection: wiring cluster heads into a connected backbone.

Given a graph and a cluster assignment, pick the member nodes that will
act as gateways so that heads are connected "directly or by only gateway
nodes" (paper, Definition 6).  We route over a minimum spanning tree of
the head-to-head shortest-path metric: for each MST link, the interior
nodes of one shortest path become gateways.  The resulting hop bound
between MST-adjacent heads is the realized ``L`` of the hierarchy.

Gateways keep their cluster affiliation — the flag changes behaviour (they
broadcast like heads in Algorithms 1 and 2), not membership.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

import networkx as nx

from ..sim.topology import Snapshot
from .hierarchy import ClusterAssignment

__all__ = ["select_gateways", "backbone_hop_bound"]


def _graph_of(snapshot: Snapshot) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(snapshot.n))
    g.add_edges_from(snapshot.edges())
    return g


def _head_mst(graph: nx.Graph, heads: FrozenSet[int]) -> Optional[nx.Graph]:
    """MST over heads under the shortest-path metric; None if disconnected."""
    aux = nx.Graph()
    aux.add_nodes_from(heads)
    for h in heads:
        lengths = nx.single_source_shortest_path_length(graph, h)
        for g2, d in lengths.items():
            if g2 in heads and g2 != h:
                aux.add_edge(h, g2, weight=d)
    if len(heads) > 1 and not nx.is_connected(aux):
        return None
    return nx.minimum_spanning_tree(aux, weight="weight")


def select_gateways(
    snapshot: Snapshot, assignment: ClusterAssignment
) -> Tuple[ClusterAssignment, Optional[int]]:
    """Flag gateway nodes connecting the heads; return (assignment, realized L).

    Returns the updated assignment and the maximum hop distance between
    MST-adjacent heads (the empirical ``L``), or ``(assignment, None)`` if
    the heads cannot be connected in this round's graph (a disconnected
    round — Definition 5 fails for it).
    """
    heads = assignment.heads
    if len(heads) <= 1:
        return assignment.with_gateways(frozenset()), 0
    graph = _graph_of(snapshot)
    mst = _head_mst(graph, heads)
    if mst is None:
        return assignment, None
    gateways: set = set()
    realized = 0
    for u, v, d in mst.edges(data="weight"):
        realized = max(realized, int(d))
        path = nx.shortest_path(graph, u, v)
        gateways.update(w for w in path[1:-1] if w not in heads)
    return assignment.with_gateways(frozenset(gateways)), realized


def backbone_hop_bound(snapshot: Snapshot, assignment: ClusterAssignment) -> Optional[int]:
    """The realized ``L`` without modifying the assignment (analysis helper)."""
    heads = assignment.heads
    if len(heads) <= 1:
        return 0
    mst = _head_mst(_graph_of(snapshot), heads)
    if mst is None:
        return None
    return max(int(d) for _, _, d in mst.edges(data="weight"))
