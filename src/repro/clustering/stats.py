"""Hierarchy statistics extracted from any clustered trace.

Where :class:`~repro.clustering.maintenance.MaintenanceStats` accumulates
online during maintenance, :func:`hierarchy_stats` measures a finished
clustered trace (from any source — the HiNet generator, maintenance, or a
hand-built scenario).  The outputs are the paper's Table 1 quantities —
θ, :math:`n_m`, :math:`n_r` — plus the realized stability interval and hop
bound, i.e. the empirical (T, L) classification of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..graphs.ctvg import CTVG
from ..graphs.properties import max_block_stable_hierarchy, realized_hop_bound
from ..graphs.trace import GraphTrace

__all__ = ["HierarchyStats", "hierarchy_stats"]


@dataclass(frozen=True)
class HierarchyStats:
    """Empirical model parameters of a clustered trace.

    Attributes
    ----------
    n:
        Node count (:math:`n_0`).
    theta:
        Distinct nodes ever serving as head (empirical θ lower bound).
    mean_heads:
        Average simultaneous head count.
    mean_members:
        Average plain-member count per round (:math:`n_m`).
    mean_reaffiliations:
        Mean cluster switches per ever-member node (:math:`n_r`).
    stable_T:
        Largest aligned-block ``T`` with a stable hierarchy (Definition 4).
    hop_bound_L:
        Realized ``L`` of Definition 7 at interval ``stable_T``; ``None``
        if head connectivity fails for some block.
    """

    n: int
    theta: int
    mean_heads: float
    mean_members: float
    mean_reaffiliations: float
    stable_T: int
    hop_bound_L: Optional[int]

    def as_cost_params(self, k: int, alpha: int = 1) -> dict:
        """Package into keyword arguments for the Table 2 cost model."""
        return {
            "n0": self.n,
            "theta": self.theta,
            "nm": self.mean_members,
            "nr": self.mean_reaffiliations,
            "k": k,
            "alpha": alpha,
            "L": self.hop_bound_L if self.hop_bound_L else 1,
        }


def hierarchy_stats(trace: GraphTrace) -> HierarchyStats:
    """Measure a clustered trace; raises if the trace lacks hierarchy info."""
    ctvg = CTVG(trace, validate=False)
    horizon = trace.horizon
    mean_heads = sum(len(ctvg.head_set(t)) for t in range(horizon)) / horizon
    stable_T = max_block_stable_hierarchy(trace)
    return HierarchyStats(
        n=trace.n,
        theta=len(ctvg.distinct_heads()),
        mean_heads=mean_heads,
        mean_members=ctvg.mean_member_count(),
        mean_reaffiliations=ctvg.mean_reaffiliations(),
        stable_T=stable_T,
        hop_bound_L=realized_hop_bound(trace, stable_T),
    )
