"""Figure 2 — the Definition 2–8 lattice.

Evaluates every stability definition on three generated traces
(stable HiNet, per-round-churning HiNet judged at two intervals) and
asserts the implication tree the figure draws: (T, L)-HiNet =
T-interval stable hierarchy ∧ T-interval L-hop head connectivity, with
the hierarchy property decomposing into head-set and cluster stability.
"""

from __future__ import annotations

from repro.experiments.figures import fig2_definition_lattice


def test_fig2_lattice(benchmark, save_result):
    reports, text = benchmark(fig2_definition_lattice)
    save_result("fig2_definition_lattice", text)
    print("\n" + text)

    for label, rep in reports.items():
        # Figure 2's tree edges, as implications, on every evaluated trace
        assert rep["HiNet"] == (rep["Th"] and rep["TdL"]), label
        assert rep["TdL"] == (rep["Td"] and rep["Lhop"]), label
        if rep["Th"]:
            assert rep["Ts"] and rep["Tc"], label

    # the three rows separate the model classes as the paper intends
    stable = next(v for k, v in reports.items() if k.startswith("(T="))
    churny_hi = next(v for k, v in reports.items() if "@ T=12" in k and k.startswith("(1,"))
    churny_lo = next(v for k, v in reports.items() if "@ T=1" in k)
    assert stable["HiNet"] and not churny_hi["HiNet"] and churny_lo["HiNet"]
