"""Push-sum gossip aggregation (Kempe, Dobra & Gehrke — paper ref [22]).

The classic mass-conserving protocol for computing sums and averages by
gossip: every node ``v`` holds a pair ``(s_v, w_v)`` initialised to
``(value_v, 1)``.  Each round it splits both components in half, keeps
one half, and sends the other to one uniformly random current neighbour;
received pairs are added in.  The estimate ``s_v / w_v`` converges to the
network average (and ``s_v/w_v · n`` to the sum) exponentially fast on
any sequence of connected graphs — gossip's answer to the dissemination
problem when only an *aggregate* of the inputs is needed, at O(1)
payload per round instead of up-to-k tokens.

Invariants (hypothesis-tested):

* **mass conservation** — Σ s_v and Σ w_v are constant across rounds
  (the engine delivers within the round, so no mass is in flight at
  round end when latency = 1);
* weights stay positive.

Cost accounting: one (s, w) pair ≈ one token-equivalent (payload_cost 1).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..sim.messages import Delivery, Message
from ..sim.node import NodeAlgorithm, RoundContext
from ..sim.rng import SeedLike, derive_seed, make_rng

__all__ = ["PushSumNode", "make_pushsum_factory"]


class PushSumNode(NodeAlgorithm):
    """Per-node push-sum state machine.

    ``TA`` is unused (aggregation has no tokens); completion is judged by
    estimate error, not coverage.
    """

    def __init__(
        self,
        node: int,
        k: int,
        initial_tokens: frozenset,
        value: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node, k, initial_tokens)
        self.value = float(value)
        self.s = float(value)
        self.w = 1.0
        self._rng = rng

    @property
    def estimate(self) -> float:
        """Current estimate of the network-wide average."""
        return self.s / self.w

    def send(self, ctx: RoundContext) -> Sequence[Message]:
        if not ctx.neighbors:
            return []
        peers = sorted(ctx.neighbors)
        dest = peers[int(self._rng.integers(0, len(peers)))]
        half_s, half_w = self.s / 2.0, self.w / 2.0
        self.s -= half_s
        self.w -= half_w
        return [
            Message(
                sender=self.node,
                tokens=frozenset(),
                delivery=Delivery.UNICAST,
                dest=dest,
                payload=(half_s, half_w),
                payload_cost=1,
                tag="pushsum",
            )
        ]

    def receive(self, ctx: RoundContext, inbox: Sequence[Message]) -> None:
        for msg in inbox:
            if msg.tag == "pushsum" and msg.payload is not None:
                ds, dw = msg.payload
                self.s += float(ds)
                self.w += float(dw)


def make_pushsum_factory(
    values: Mapping[int, float], seed: SeedLike = None
) -> Callable[[int, int, frozenset], PushSumNode]:
    """Engine factory: node ``v`` starts with ``values[v]`` (default 0.0).

    Each node derives an independent child RNG from ``seed`` so results
    don't depend on engine iteration order.
    """
    base = derive_seed(seed, "pushsum")

    def factory(node: int, k: int, initial: frozenset) -> PushSumNode:
        rng = make_rng(derive_seed(base, node))
        return PushSumNode(node, k, initial, value=values.get(node, 0.0), rng=rng)

    return factory
