"""Extension X16 — dissemination progress curves.

The coverage S-curve (fraction of (node, token) pairs known per round)
is the time-domain view the paper's tables summarise to one number.
This bench records it for the four Table-3 algorithm/model pairs and
persists sparkline renderings — showing *how* each algorithm spends its
rounds: KLO's broad front vs the hierarchy's upload → backbone →
download waves.
"""

from __future__ import annotations

from repro.experiments.report import format_records
from repro.experiments.runner import (
    run_algorithm1,
    run_algorithm2,
    run_klo_interval,
    run_klo_one,
)
from repro.experiments.scenarios import hinet_interval_scenario, hinet_one_scenario
from repro.viz import render_progress, sparkline


def _curves(n0=60, seed=107):
    k, alpha, L, theta = 8, 5, 2, 18
    interval = hinet_interval_scenario(
        n0=n0, theta=theta, k=k, alpha=alpha, L=L, seed=seed,
    )
    one = hinet_one_scenario(n0=n0, theta=theta, k=k, L=L, seed=seed)

    records = [
        run_algorithm1(interval),
        run_klo_interval(interval),
        run_algorithm2(one),
        run_klo_one(one),
    ]
    curves = []
    for rec in records:
        m = rec.result.metrics
        full = rec.n * rec.k
        fractions = [c / full for c in m.per_round_coverage]
        curves.append(
            {
                "algorithm": rec.algorithm,
                "curve": sparkline(fractions, width=50),
                "completion": rec.completion_round,
                "tokens": rec.tokens_sent,
                "complete": rec.complete,
            }
        )
    return curves


def test_progress_curves(benchmark, save_result):
    rows = benchmark.pedantic(_curves, rounds=1, iterations=1)
    text = "X16 — coverage S-curves per algorithm (n=60, k=8)\n\n"
    text += format_records(rows, columns=["algorithm", "completion",
                                          "tokens", "complete"])
    text += "\n\n"
    for r in rows:
        text += f"  {r['algorithm']:<24s} {r['curve']}\n"
    save_result("progress_curves", text)
    print("\n" + text)

    assert all(r["complete"] for r in rows)
    # every curve ends saturated and is monotone by construction
    for r in rows:
        assert r["curve"].endswith("█")