"""Reproduction of the paper's Figures 1–3.

The paper's figures are illustrative rather than measured; each function
here regenerates the illustrated object programmatically and renders it as
text, so the benches both exercise real library code and produce a
reviewable artifact.

* Figure 1 — an example network with a constructed cluster hierarchy.
* Figure 2 — the definition lattice, evaluated live on generated traces.
* Figure 3 — an Algorithm-1 walkthrough showing one token's journey
  member → head → gateway → head → members.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.algorithm1 import make_algorithm1_factory
from ..graphs.generators.hinet import HiNetParams, generate_hinet
from ..graphs.properties import definition_report
from ..roles import Role
from ..sim.engine import SynchronousEngine
from ..sim.topology import Snapshot

__all__ = ["fig1_example_network", "fig2_definition_lattice", "fig3_walkthrough"]


def fig1_example_network() -> Tuple[Snapshot, str]:
    """Figure 1: a small clustered network, hand-laid like the paper's sketch.

    Three clusters (heads 0, 4, 8), two gateways (3 linking 0–4 and 7
    linking 4–8), and ordinary members — the structural archetype of
    every (T, L)-HiNet scenario.
    """
    roles = {
        0: Role.HEAD, 4: Role.HEAD, 8: Role.HEAD,
        3: Role.GATEWAY, 7: Role.GATEWAY,
    }
    head_of = {0: 0, 1: 0, 2: 0, 3: 0, 4: 4, 5: 4, 6: 4, 7: 4, 8: 8, 9: 8, 10: 8}
    edges = [
        (0, 1), (0, 2), (0, 3),          # cluster of head 0
        (3, 4),                          # gateway 3 bridges 0 -> 4
        (4, 5), (4, 6), (4, 7),          # cluster of head 4
        (7, 8),                          # gateway 7 bridges 4 -> 8
        (8, 9), (8, 10),                 # cluster of head 8
        (1, 2), (5, 6),                  # intra-cluster member links
    ]
    n = 11
    snap = Snapshot.from_edges(
        n,
        edges,
        roles=[roles.get(v, Role.MEMBER) for v in range(n)],
        head_of=[head_of[v] for v in range(n)],
    )
    snap.validate_hierarchy()

    lines = ["Figure 1 — example network with clusters", ""]
    for head, members in sorted(snap.clusters().items()):
        tags = []
        for v in sorted(members):
            role = snap.role(v)
            tags.append(f"{v}({role})")
        lines.append(f"  cluster {head}: " + ", ".join(tags))
    lines.append("")
    lines.append(
        "  backbone: 0 -(g3)- 4 -(g7)- 8   (head-to-head hop distance L = 2)"
    )
    return snap, "\n".join(lines)


def fig2_definition_lattice(seed: int = 7) -> Tuple[Dict[str, Dict[str, bool]], str]:
    """Figure 2: evaluate the Definition 2–8 lattice on contrasting traces.

    Three generated traces — a stable (T, L)-HiNet, a per-round-churning
    (1, L)-HiNet, and the stable one judged at double its actual interval —
    are scored against every definition, demonstrating which properties
    each class satisfies and that the lattice implications hold.
    """
    T, L = 12, 2
    stable = generate_hinet(
        HiNetParams(n=30, theta=8, num_heads=6, T=T, phases=4, L=L,
                    reaffiliation_p=0.2, churn_p=0.0),
        seed=seed,
    ).trace
    churny = generate_hinet(
        HiNetParams(n=30, theta=8, num_heads=6, T=1, phases=4 * T, L=L,
                    reaffiliation_p=0.5, head_churn=2, churn_p=0.0),
        seed=seed + 1,
    ).trace

    reports = {
        f"(T={T}, L={L})-HiNet trace @ T={T}": definition_report(stable, T, L),
        f"(1, L={L})-HiNet trace @ T={T}": definition_report(churny, T, L),
        f"(1, L={L})-HiNet trace @ T=1": definition_report(churny, 1, L),
    }

    names = ["Ts", "Tc", "Th", "Td", "Lhop", "TdL", "HiNet"]
    lines = ["Figure 2 — definition lattice evaluated on generated traces", ""]
    header = f"  {'trace':42s} " + " ".join(f"{n:>5s}" for n in names)
    lines.append(header)
    for label, rep in reports.items():
        cells = " ".join(f"{'yes' if rep[n] else 'no':>5s}" for n in names)
        lines.append(f"  {label:42s} {cells}")
    lines.append("")
    lines.append("  lattice: HiNet = Th & TdL;  Th => Ts & Tc;  TdL => Td & Lhop")
    return reports, "\n".join(lines)


def fig3_walkthrough(seed: int = 3) -> str:
    """Figure 3: one token's journey through Algorithm 1.

    A 3-cluster (T, L)-HiNet with a single token starting at an ordinary
    member; the rendered trace shows the paper's narrative — the member
    uploads to its head, the head broadcasts, gateways relay cluster to
    cluster, each head re-broadcasts to its members.
    """
    k, L, alpha = 1, 2, 1
    T = k + alpha * L
    params = HiNetParams(
        n=12, theta=3, num_heads=3, T=T, phases=4, L=L,
        reaffiliation_p=0.0, churn_p=0.0,
    )
    scen = generate_hinet(params, seed=seed)
    # place the single token on an ordinary member of the first round
    snap0 = scen.trace.snapshot(0)
    member = min(
        v for v in range(snap0.n) if snap0.role(v) is Role.MEMBER
    )
    engine = SynchronousEngine(record_trace=True, record_knowledge=True)
    result = engine.run(
        scen.trace,
        make_algorithm1_factory(T=T, M=4),
        k=k,
        initial={member: frozenset({0})},
        max_rounds=4 * T,
        stop_when_complete=True,
    )
    assert result.trace is not None

    lines = [
        "Figure 3 — Algorithm 1 walkthrough (k=1 token, 3 clusters, "
        f"T={T}, L={L})",
        f"  token 0 starts at member node {member}",
        "",
    ]
    seen = set()
    for r, sender, receiver in result.trace.token_path(0):
        if receiver in seen:
            continue
        seen.add(receiver)
        srole = scen.trace.snapshot(r).role(sender)
        rrole = scen.trace.snapshot(r).role(receiver)
        lines.append(
            f"  round {r:2d}: node {sender} ({srole}) -> node {receiver} ({rrole})"
        )
    status = "complete" if result.complete else "INCOMPLETE"
    lines.append("")
    lines.append(
        f"  dissemination {status} at round {result.metrics.completion_round}, "
        f"{result.metrics.tokens_sent} tokens sent"
    )
    return "\n".join(lines)
