"""Mobility substrate: random-waypoint trajectories and unit-disk connectivity.

Produces realistic MANET-style dynamic graphs: run a
:class:`~repro.mobility.waypoint.RandomWaypoint` walker, convert the
trajectory with :func:`~repro.mobility.unitdisk.unit_disk_trace`, then feed
the trace to the clustering maintenance pipeline
(:mod:`repro.clustering.maintenance`) to obtain an empirical CTVG.
"""

from .field import Field
from .unitdisk import unit_disk_edges, unit_disk_snapshot, unit_disk_trace
from .waypoint import RandomWaypoint

__all__ = [
    "Field",
    "RandomWaypoint",
    "unit_disk_edges",
    "unit_disk_snapshot",
    "unit_disk_trace",
]
