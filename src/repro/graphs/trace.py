"""Finite dynamic-graph traces.

A :class:`GraphTrace` is the concrete representation of a dynamic network
used throughout the library: an explicit sequence of per-round
:class:`~repro.sim.topology.Snapshot` objects.  It implements the engine's
``DynamicNetwork`` protocol (``.n`` + ``.snapshot(r)``) and is what every
generator in :mod:`repro.graphs.generators` produces and every property
checker in :mod:`repro.graphs.properties` consumes.

Rounds beyond the recorded horizon are handled per the ``extend`` policy:

* ``"hold"`` (default) — the last snapshot repeats forever (the network
  "freezes"; safe for algorithms whose round bound slightly exceeds the
  generated horizon).
* ``"cycle"`` — the trace repeats periodically.
* ``"strict"`` — an ``IndexError`` is raised (for tests that must not
  silently run past the scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..sim.topology import Snapshot

__all__ = ["GraphTrace"]

_EXTEND_MODES = ("hold", "cycle", "strict")


@dataclass
class GraphTrace:
    """An explicit per-round sequence of snapshots.

    Attributes
    ----------
    snapshots:
        One :class:`Snapshot` per recorded round, all with the same node
        count.
    extend:
        Behaviour for rounds past ``len(snapshots) - 1``; see module
        docstring.
    """

    snapshots: List[Snapshot]
    extend: str = "hold"

    def __post_init__(self) -> None:
        if not self.snapshots:
            raise ValueError("a trace needs at least one snapshot")
        if self.extend not in _EXTEND_MODES:
            raise ValueError(
                f"extend must be one of {_EXTEND_MODES}, got {self.extend!r}"
            )
        n = self.snapshots[0].n
        for i, snap in enumerate(self.snapshots):
            if snap.n != n:
                raise ValueError(
                    f"snapshot {i} has {snap.n} nodes, expected {n}"
                )

    # -- DynamicNetwork protocol ------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.snapshots[0].n

    def snapshot(self, r: int) -> Snapshot:
        """Snapshot of round ``r``, applying the extension policy."""
        if r < 0:
            raise IndexError(f"round index must be non-negative, got {r}")
        h = len(self.snapshots)
        if r < h:
            return self.snapshots[r]
        if self.extend == "hold":
            return self.snapshots[-1]
        if self.extend == "cycle":
            return self.snapshots[r % h]
        raise IndexError(f"round {r} beyond recorded horizon {h} (strict trace)")

    # -- container conveniences ---------------------------------------------

    @property
    def horizon(self) -> int:
        """Number of recorded rounds."""
        return len(self.snapshots)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)

    def __getitem__(self, r: int) -> Snapshot:
        return self.snapshots[r]

    # -- construction ---------------------------------------------------------

    @classmethod
    def constant(cls, snapshot: Snapshot, rounds: int = 1, extend: str = "hold") -> "GraphTrace":
        """A static network: the same snapshot for ``rounds`` rounds."""
        if rounds < 1:
            raise ValueError(f"need at least one round, got {rounds}")
        return cls(snapshots=[snapshot] * rounds, extend=extend)

    @classmethod
    def from_networkx(cls, graphs: Iterable, extend: str = "hold") -> "GraphTrace":
        """Build from an iterable of :class:`networkx.Graph` on nodes 0..n-1."""
        snaps = [Snapshot.from_networkx(g) for g in graphs]
        return cls(snapshots=snaps, extend=extend)

    def sliced(self, start: int, stop: int) -> "GraphTrace":
        """Sub-trace of rounds ``[start, stop)`` with the same policy."""
        if not (0 <= start < stop <= self.horizon):
            raise ValueError(
                f"invalid slice [{start}, {stop}) for horizon {self.horizon}"
            )
        return GraphTrace(snapshots=self.snapshots[start:stop], extend=self.extend)

    @property
    def clustered(self) -> bool:
        """Whether every snapshot carries hierarchy information."""
        return all(s.clustered for s in self.snapshots)

    def validate_hierarchy(self) -> None:
        """Validate CTVG structural invariants on every recorded round."""
        for r, snap in enumerate(self.snapshots):
            try:
                snap.validate_hierarchy()
            except ValueError as exc:
                raise ValueError(f"round {r}: {exc}") from exc
