"""Benchmark-suite helpers.

Every bench both *times* its regeneration function via pytest-benchmark
and *persists* the produced table to ``benchmarks/results/<name>.txt`` so
the reproduced rows can be inspected (and diffed against EXPERIMENTS.md)
without re-running.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a named text artifact under benchmarks/results/."""

    def _save(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save


@pytest.fixture
def result_cache(tmp_path):
    """A fresh on-disk result cache for cache-aware benches.

    Rooted under pytest's tmp dir, so timing numbers always reflect a
    *cold* cache; benches then re-run warm to assert replay fidelity.
    """
    from repro.experiments.cache import ResultCache

    return ResultCache(tmp_path / "result-cache")
