"""Table 2 — the analytical cost model (paper, Section V).

Regenerates all four rows (time in rounds, communication in tokens) from
the closed forms, both at the paper's Table 3 parameters and across a
parameter grid, and asserts the paper's qualitative claims on every grid
point where its premise (n_r ≪ n₀, θ < n₀) holds.
"""

from __future__ import annotations

from math import ceil

from repro.core.analysis import (
    CostParams,
    hinet_interval_comm,
    hinet_interval_time,
    hinet_one_comm,
    klo_interval_comm,
    klo_interval_time,
    klo_one_comm,
    table2,
)
from repro.experiments.report import format_records
from repro.experiments.tables import analytic_table2


def _grid():
    for n0 in (50, 100, 200, 400):
        for k in (4, 8, 16):
            for alpha in (2, 5):
                theta = max(n0 * 3 // 10, alpha)
                nm = n0 * 4 // 10
                yield CostParams(n0=n0, theta=theta, nm=nm, nr=3, k=k,
                                 alpha=alpha, L=2)


def _evaluate_grid():
    rows = []
    for p in _grid():
        rows.append(
            {
                "n0": p.n0, "k": p.k, "alpha": p.alpha, "theta": p.theta,
                "klo_T_time": klo_interval_time(p),
                "hinet_T_time": hinet_interval_time(p),
                "klo_T_comm": klo_interval_comm(p),
                "hinet_T_comm": hinet_interval_comm(p),
                "klo_1_comm": klo_one_comm(p),
                "hinet_1_comm": hinet_one_comm(p),
            }
        )
    return rows


def test_table2_grid(benchmark, save_result):
    rows = benchmark(_evaluate_grid)
    for row in rows:
        # the paper's claims at its operating point (theta/n0 = 0.3, nr small):
        assert row["hinet_T_comm"] < row["klo_T_comm"], row
        assert row["hinet_1_comm"] < row["klo_1_comm"], row
    text = "Table 2 cost model over a parameter grid (L=2, nm=0.4*n0, nr=3)\n\n"
    text += format_records(rows)
    save_result("table2_cost_model", text)
    print("\n" + text)


def test_table2_symbolic_rows(benchmark, save_result):
    """The four Table 2 rows rendered at the paper's Table 3 parameters."""
    p = CostParams(n0=100, theta=30, nm=40, nr=3, k=8, alpha=5, L=2)
    rows = benchmark(analytic_table2, p)
    text = "Table 2 rows at the Table 3 operating point\n\n" + format_records(rows)
    save_result("table2_rows", text)
    print("\n" + text)
    assert rows[1]["comm_tokens"] < rows[0]["comm_tokens"]
    assert rows[3]["comm_tokens"] < rows[2]["comm_tokens"]
    # time: HiNet's phase count beats KLO's at this theta
    assert rows[1]["time_rounds"] <= rows[0]["time_rounds"]
