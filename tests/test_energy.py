"""Tests for the energy substrate (budgets, lifetime, load skew)."""

import pytest

from repro.baselines.flooding import make_flood_all_factory
from repro.baselines.klo import make_klo_one_factory
from repro.core.algorithm2 import make_algorithm2_factory
from repro.energy.budget import EnergyLimitedNode, make_energy_factory
from repro.energy.lifetime import run_with_budget
from repro.experiments.scenarios import hinet_one_scenario
from repro.graphs.generators.static import path_graph, static_trace
from repro.sim.engine import run
from repro.sim.messages import Message, initial_assignment
from repro.sim.node import NodeAlgorithm, RoundContext


class Chatty(NodeAlgorithm):
    """Broadcasts 2 tokens every round — a fixed drain for unit tests."""

    def send(self, ctx):
        return [Message.broadcast(self.node, {0, 1})]

    def receive(self, ctx, inbox):
        for m in inbox:
            self.TA |= m.tokens


def _ctx(r=0):
    return RoundContext(round_index=r, node=0, neighbors=frozenset({1}))


class TestEnergyLimitedNode:
    def test_charges_token_cost(self):
        node = EnergyLimitedNode(Chatty(0, 2, frozenset({0, 1})), budget=5)
        node.send(_ctx(0))
        assert node.spent == 2
        assert node.remaining == 3

    def test_suppresses_when_budget_insufficient(self):
        node = EnergyLimitedNode(Chatty(0, 2, frozenset({0, 1})), budget=3)
        assert node.send(_ctx(0))          # 2 spent, 1 left
        assert node.send(_ctx(1)) == []    # 2 > 1: suppressed
        assert node.depleted
        assert node.depleted_at == 1

    def test_exact_budget_depletes_after_use(self):
        node = EnergyLimitedNode(Chatty(0, 2, frozenset({0, 1})), budget=2)
        assert node.send(_ctx(0))
        assert node.depleted_at == 0
        assert node.send(_ctx(1)) == []

    def test_receiving_free_and_shared_TA(self):
        base = Chatty(0, 2, frozenset())
        node = EnergyLimitedNode(base, budget=0)
        node.receive(_ctx(), [Message.broadcast(1, {1})])
        assert 1 in node.TA and 1 in base.TA
        assert node.spent == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            EnergyLimitedNode(Chatty(0, 2, frozenset()), budget=-1)

    def test_heterogeneous_budgets(self):
        factory = make_energy_factory(
            make_flood_all_factory(), budget=1.0, budgets={0: 100.0}
        )
        rich = factory(0, 1, frozenset({0}))
        poor = factory(1, 1, frozenset({0}))
        assert rich.budget == 100.0 and poor.budget == 1.0


class TestBudgetedRuns:
    def test_generous_budget_changes_nothing(self):
        trace = static_trace(path_graph(5), rounds=10)
        init = {0: frozenset({0})}
        plain = run(trace, make_flood_all_factory(), k=1, initial=init,
                    max_rounds=10, stop_when_complete=True)
        rep = run_with_budget(trace, make_flood_all_factory(), k=1,
                              initial=init, max_rounds=10, budget=1e9,
                              stop_when_complete=True)
        assert rep.complete
        assert rep.first_depletion_round is None
        assert rep.spent_total == plain.metrics.tokens_sent

    def test_starved_budget_blocks_dissemination(self):
        trace = static_trace(path_graph(6), rounds=10)
        rep = run_with_budget(trace, make_flood_all_factory(), k=1,
                              initial={0: frozenset({0})}, max_rounds=10,
                              budget=1.0)
        # each node can transmit once; flooding needs repetition on a path?
        # actually one send per node suffices on a static path: the token
        # relays one hop per round with fresh senders. So it completes:
        assert rep.complete
        # but everyone depleted after their single transmission
        assert rep.depleted_count >= 5

    def test_zero_budget_nothing_moves(self):
        trace = static_trace(path_graph(4), rounds=5)
        rep = run_with_budget(trace, make_flood_all_factory(), k=1,
                              initial={0: frozenset({0})}, max_rounds=5,
                              budget=0.0)
        assert not rep.complete
        assert rep.spent_total == 0

    def test_hierarchical_load_concentrates_on_backbone(self):
        """Algorithm 2 drains heads/gateways while members idle — higher
        skew than flat KLO where everyone transmits equally."""
        scenario = hinet_one_scenario(n0=30, theta=9, k=3, L=2, seed=17)
        hinet = run_with_budget(
            scenario.trace, make_algorithm2_factory(M=29), k=3,
            initial=scenario.initial, max_rounds=29, budget=1e9,
        )
        flat = run_with_budget(
            scenario.trace, make_klo_one_factory(M=29), k=3,
            initial=scenario.initial, max_rounds=29, budget=1e9,
        )
        assert hinet.complete and flat.complete
        assert hinet.spent_total < flat.spent_total  # the paper's saving
        assert hinet.load_skew > flat.load_skew      # ...paid in skew

    def test_report_consistency(self):
        scenario = hinet_one_scenario(n0=20, theta=6, k=2, L=2, seed=19)
        rep = run_with_budget(
            scenario.trace, make_algorithm2_factory(M=19), k=2,
            initial=scenario.initial, max_rounds=19, budget=1e9,
        )
        assert rep.spent_total == pytest.approx(sum(rep.per_node_spent.values()))
        assert rep.spent_max == max(rep.per_node_spent.values())
        assert rep.load_skew >= 1.0
