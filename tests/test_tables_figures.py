"""Tests for the table/figure reproduction harness and report formatting."""

import pytest

from repro.experiments.figures import (
    fig1_example_network,
    fig2_definition_lattice,
    fig3_walkthrough,
)
from repro.experiments.report import format_records, format_table, records_to_markdown
from repro.experiments.tables import analytic_table2, analytic_table3, simulated_table3
from repro.core.analysis import CostParams


class TestReportFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        out = format_table(["x"], [[1.25], [2.0]])
        assert "1.2" in out or "1.3" in out
        assert "2\n" in out + "\n"

    def test_none_rendered_as_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_records_empty(self):
        assert format_records([]) == "(no rows)"

    def test_markdown_shape(self):
        md = records_to_markdown([{"a": 1, "b": 2}])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2 |"


class TestAnalyticTables:
    def test_table2_rows_in_paper_order(self):
        p = CostParams(n0=50, theta=10, nm=20, nr=2, k=4, alpha=2, L=2)
        rows = analytic_table2(p)
        assert [r["model"] for r in rows] == [
            "(k+a*L)-interval connected [7]",
            "(k+a*L, L)-HiNet",
            "1-interval connected [7]",
            "(1, L)-HiNet",
        ]

    def test_table3_deviation_annotations(self):
        rows = analytic_table3()
        devs = [row["comm_deviation"] for row in rows]
        assert devs == [0, 0, 0, -960]


class TestSimulatedTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return simulated_table3(seed=2013, n0=60)

    def test_all_complete(self, rows):
        assert all(r["complete"] for r in rows)

    def test_shape_hinet_cheaper_interval(self, rows):
        klo, hinet = rows[0], rows[1]
        assert hinet["measured_comm"] < klo["measured_comm"]

    def test_shape_hinet_cheaper_one_interval(self, rows):
        klo, hinet = rows[2], rows[3]
        assert hinet["measured_comm"] < klo["measured_comm"]

    def test_completion_within_analytic_time(self, rows):
        for row in rows:
            assert row["measured_completion"] <= row["analytic_time"]


class TestFigures:
    def test_fig1_valid_hierarchy_and_text(self):
        snap, text = fig1_example_network()
        snap.validate_hierarchy()
        assert "cluster 0" in text
        assert snap.heads() == frozenset({0, 4, 8})

    def test_fig2_lattice_rows(self):
        reports, text = fig2_definition_lattice()
        stable = next(v for k, v in reports.items() if k.startswith("(T="))
        assert stable["HiNet"]
        churn_at_T = next(
            v for k, v in reports.items() if k.startswith("(1,") and "@ T=12" in k
        )
        assert not churn_at_T["HiNet"]
        churn_at_1 = next(
            v for k, v in reports.items() if "@ T=1" in k
        )
        assert churn_at_1["HiNet"]
        assert "lattice" in text

    def test_fig3_walkthrough_narrative(self):
        text = fig3_walkthrough()
        assert "token 0 starts at member" in text
        assert "complete" in text
        assert "(h)" in text and "(g)" in text  # head and gateway hops shown
