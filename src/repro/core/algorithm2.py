"""Algorithm 2 — k-token dissemination in a (1, L)-HiNet.

The paper's Figure 5: designed for the weakest stability, where the
hierarchy may change every round.  The price for correctness under such
churn is sending whole token *sets* instead of single tokens:

**Cluster member**
    Sends its entire TA to its head in round 0, and again whenever its
    cluster head changes — so a member uploads to each head at most once.
    Otherwise it stays silent, absorbing whatever it hears.

**Cluster head / gateway**
    Broadcasts its entire TA every round, and absorbs everything heard.

Correctness: ``M ≥ n − 1`` rounds suffice under 1-interval connectivity
(Theorem 2); ``M ≥ ⌈θ/α⌉ + 1`` under (α·L)-interval cluster head
connectivity (Theorem 3); ``M ≥ θ·L + 1`` under an L-interval stable
hierarchy (Theorem 4).

Communication accounting matches Table 2: heads/gateways pay up to ``k``
tokens per round; a member pays ``≤ k`` only on (re-)affiliation, giving
the :math:`(n_0-1)(n_0-n_m)k + n_m n_r k` total instead of KLO's
:math:`(n_0-1) n_0 k`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..roles import Role
from ..sim.messages import Message
from ..sim.node import NodeAlgorithm, RoundContext

__all__ = ["Algorithm2Node", "make_algorithm2_factory"]


class Algorithm2Node(NodeAlgorithm):
    """Per-node state machine of Algorithm 2.

    Parameters
    ----------
    M:
        Round bound; pick per Theorems 2–4 depending on what the scenario
        guarantees (the runner uses Theorem 2's ``n − 1`` by default).
    """

    def __init__(self, node: int, k: int, initial_tokens: frozenset, M: int) -> None:
        super().__init__(node, k, initial_tokens)
        if M < 1:
            raise ValueError(f"M must be >= 1, got {M}")
        self.M = M
        self._prev_head: Optional[int] = None
        self._seen_first_round = False

    def send(self, ctx: RoundContext) -> Sequence[Message]:
        if ctx.round_index >= self.M:
            return []

        if ctx.role is Role.MEMBER:
            changed = (not self._seen_first_round) or ctx.head != self._prev_head
            self._seen_first_round = True
            self._prev_head = ctx.head
            if changed and ctx.head is not None and self.TA:
                return [
                    Message.unicast(self.node, ctx.head, self.TA, tag="upload")
                ]
            return []

        # head or gateway: full-set broadcast every round
        self._seen_first_round = True
        self._prev_head = ctx.head
        if not self.TA:
            return []
        return [Message.broadcast(self.node, self.TA, tag="bcast")]

    def receive(self, ctx: RoundContext, inbox: Sequence[Message]) -> None:
        for msg in inbox:
            self.TA |= msg.tokens

    def finished(self, ctx: RoundContext) -> bool:
        return ctx.round_index + 1 >= self.M


def make_algorithm2_factory(M: int):
    """Factory for the engine: ``factory(node, k, initial) -> Algorithm2Node``."""

    def factory(node: int, k: int, initial: frozenset) -> Algorithm2Node:
        return Algorithm2Node(node, k, initial, M=M)

    # advertise the vectorised equivalent (see repro.sim.fastpath)
    factory.fastpath = ("algorithm2", {"M": M})
    return factory
