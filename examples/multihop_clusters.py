#!/usr/bin/env python
"""Multi-hop clusters: the paper's future work, made runnable.

Builds d-hop hierarchical scenarios for radii d = 1, 2, 3 and runs the
tree-relayed dissemination against flat KLO on the same traces —
quantifying the trade-off the paper's Section VI poses: deeper clusters
mean fewer heads but longer relay pipelines and a wider broadcasting
interior.

Also demonstrates d-hop *formation* on a real topology: clustering a
random geometric graph with radius 2 and rendering the relay forest.

Run:  python examples/multihop_clusters.py
"""

import numpy as np

from repro.baselines.klo import make_klo_one_factory
from repro.experiments.report import format_records
from repro.mobility import Field, unit_disk_snapshot
from repro.multihop import DHopParams, dhop_clustering, generate_dhop, make_dhop_factory
from repro.sim import initial_assignment, run


def radius_sweep() -> None:
    n, k = 60, 5
    init = initial_assignment(k, n, mode="spread")
    rows = []
    for d in (1, 2, 3):
        params = DHopParams(n=n, num_heads=5, T=6, phases=12, d=d, L=2,
                            reaffiliation_p=0.1, churn_p=0.0)
        scen = generate_dhop(params, seed=53)
        M = scen.trace.horizon
        ours = run(scen.trace, make_dhop_factory(M=M, scenario=scen), k=k,
                   initial=init, max_rounds=M)
        klo = run(scen.trace, make_klo_one_factory(M=M), k=k,
                  initial=init, max_rounds=M)
        rows.append({
            "d": d,
            "dhop_comm": ours.metrics.tokens_sent,
            "dhop_completion": ours.metrics.completion_round,
            "klo_comm": klo.metrics.tokens_sent,
            "complete": ours.complete,
        })
    print("=== cluster radius sweep (n=60, k=5, 5 heads) ===")
    print(format_records(rows))
    print()


def formation_demo() -> None:
    field = Field(300, 300)
    positions = field.uniform_positions(24, seed=11)
    snap = unit_disk_snapshot(positions, radius=90)
    asg = dhop_clustering(snap, d=2)
    asg.validate(snap)

    print("=== d=2 formation on a random geometric graph (n=24) ===")
    for head in sorted(asg.heads):
        members = sorted(asg.cluster(head))
        print(f"  cluster {head}:")
        for v in members:
            if v == head:
                continue
            chain = [v]
            while chain[-1] != head:
                chain.append(asg.parent[chain[-1]])
            print(f"    {' -> '.join(map(str, chain))}  (depth {asg.depth[v]})")
    depths = [asg.depth[v] for v in range(asg.n)]
    print(f"  heads: {len(asg.heads)}, max depth: {max(depths)}")


def main() -> None:
    radius_sweep()
    formation_demo()


if __name__ == "__main__":
    main()
