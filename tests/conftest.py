"""Shared fixtures: small verified scenarios and reusable snapshots."""

from __future__ import annotations

import pytest

from repro.graphs.generators.hinet import HiNetParams, generate_hinet
from repro.roles import Role
from repro.sim.topology import Snapshot


@pytest.fixture
def triangle() -> Snapshot:
    """A 3-cycle, the smallest 2-connected graph."""
    return Snapshot.from_edges(3, [(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def path5() -> Snapshot:
    """A 5-node path 0-1-2-3-4."""
    return Snapshot.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def two_clusters() -> Snapshot:
    """Two clusters (heads 0 and 3) bridged by gateway 2; L = 2.

    layout: 1 - 0(h) - 2(g) - 3(h) - 4
    """
    return Snapshot.from_edges(
        5,
        [(0, 1), (0, 2), (2, 3), (3, 4)],
        roles=[Role.HEAD, Role.MEMBER, Role.GATEWAY, Role.HEAD, Role.MEMBER],
        head_of=[0, 0, 0, 3, 3],
    )


@pytest.fixture
def small_hinet():
    """A compact verified (T, L)-HiNet: n=20, k implied by the caller."""
    params = HiNetParams(
        n=20, theta=6, num_heads=4, T=8, phases=4, L=2,
        reaffiliation_p=0.2, churn_p=0.05,
    )
    return generate_hinet(params, seed=42)
