"""Extension X15 — the headline result with confidence intervals.

Single-seed tables can flatter; this bench re-runs the central
comparison (Algorithm 1 vs T-interval KLO on shared verified scenarios at
the paper's operating point) across 10 independent seeds and reports the
communication ratio with a 95 % t-interval — the statistical form of the
paper's "benefit can be as much as 50 %" claim.
"""

from __future__ import annotations

from repro.experiments.replication import replicate
from repro.experiments.report import format_records
from repro.experiments.runner import execute
from repro.experiments.scenarios import hinet_interval_scenario


def _experiment(seed):
    scenario = hinet_interval_scenario(
        n0=100, theta=30, k=8, alpha=5, L=2, seed=seed, verify=False,
    )
    ours = execute("algorithm1", scenario)
    theirs = execute("klo-interval", scenario)
    return {
        "comm_ratio": theirs.tokens_sent / max(ours.tokens_sent, 1),
        "hinet_tokens": ours.tokens_sent,
        "klo_tokens": theirs.tokens_sent,
        "hinet_completion": ours.completion_round or 0,
        "klo_completion": theirs.completion_round or 0,
        "both_complete": ours.complete and theirs.complete,
    }


def _replicated():
    return replicate(_experiment, replications=10, base_seed=2013)


def test_headline_with_confidence(benchmark, save_result):
    summaries = benchmark.pedantic(_replicated, rounds=1, iterations=1)
    rows = [
        {
            "metric": name,
            "mean": round(s.mean, 2),
            "std": round(s.std, 2),
            "ci95_low": round(s.ci95[0], 2),
            "ci95_high": round(s.ci95[1], 2),
            "min": round(s.minimum, 2),
            "max": round(s.maximum, 2),
            "n": s.n,
        }
        for name, s in summaries.items()
    ]
    text = ("X15 — headline comparison over 10 seeds "
            "(n0=100, theta=30, k=8, alpha=5, L=2)\n\n")
    text += format_records(rows)
    save_result("replication_headline", text)
    print("\n" + text)

    ratio = summaries["comm_ratio"]
    # the paper's ~2x claim holds with room to spare, not just on average
    # but across the whole confidence interval and the sample extremes
    assert ratio.ci95[0] > 1.5
    assert ratio.minimum > 1.5
