"""Cross-cutting hypothesis property tests on library invariants.

These complement the per-module tests with properties that hold across
components: engine conservation laws, serialization round-trips on
arbitrary generated traces, window coverage, and cost-accounting
identities.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flooding import make_flood_all_factory
from repro.graphs.generators.hinet import HiNetParams, generate_hinet
from repro.graphs.generators.interval import t_interval_trace
from repro.graphs.properties import windows_of
from repro.io import trace_from_dict, trace_to_dict
from repro.sim.engine import run
from repro.sim.messages import initial_assignment
from repro.viz import sparkline

#: Nightly CI deepens every sweep (REPRO_HYPOTHESIS_SCALE=8); default 1.
_SCALE = int(os.environ.get("REPRO_HYPOTHESIS_SCALE", "1"))


class TestEngineConservation:
    @settings(max_examples=15 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 2000), n=st.integers(2, 20), k=st.integers(1, 6))
    def test_coverage_monotone_and_token_conservation(self, seed, n, k):
        """For absorb-only algorithms: (1) coverage never decreases;
        (2) tokens are never created — every output token was in some
        input; (3) inputs are never lost."""
        trace = t_interval_trace(n, T=2, rounds=2 * n, churn_p=0.1, seed=seed)
        init = initial_assignment(k, n, mode="spread")
        res = run(trace, make_flood_all_factory(), k=k, initial=init,
                  max_rounds=2 * n, stop_when_complete=True)
        cov = res.metrics.per_round_coverage
        assert cov == sorted(cov)
        universe = frozenset(range(k))
        all_inputs = frozenset().union(*init.values()) if init else frozenset()
        for v, out in res.outputs.items():
            assert out <= universe
            assert frozenset(init.get(v, frozenset())) <= out
        assert frozenset().union(*res.outputs.values()) <= all_inputs

    @settings(max_examples=15 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 2000), n=st.integers(2, 16))
    def test_cost_identities(self, seed, n):
        """messages = broadcasts + unicasts; per-round tokens sum to total."""
        trace = t_interval_trace(n, T=2, rounds=n, churn_p=0.1, seed=seed)
        res = run(trace, make_flood_all_factory(), k=2,
                  initial=initial_assignment(2, n, mode="spread"),
                  max_rounds=n, stop_when_complete=True)
        m = res.metrics
        assert m.messages_sent == m.broadcasts + m.unicasts
        assert sum(m.per_round_tokens) == m.tokens_sent
        assert sum(c.tokens for c in m.by_role.values()) == m.tokens_sent
        assert len(m.per_round_tokens) == m.rounds


class TestSerializationProperty:
    @settings(max_examples=10 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 1000), T=st.integers(1, 4),
           heads=st.integers(1, 4))
    def test_roundtrip_any_generated_hinet(self, seed, T, heads):
        trace = generate_hinet(
            HiNetParams(n=14, theta=heads, num_heads=heads, T=T, phases=2,
                        L=2, reaffiliation_p=0.3, churn_p=0.1),
            seed=seed,
        ).trace
        back = trace_from_dict(trace_to_dict(trace))
        assert back.horizon == trace.horizon
        for r in range(trace.horizon):
            a, b = trace.snapshot(r), back.snapshot(r)
            assert a.edge_set() == b.edge_set()
            assert a.roles == b.roles and a.head_of == b.head_of


class TestWindowCoverage:
    @given(horizon=st.integers(1, 50), T=st.integers(1, 50))
    def test_blocks_partition_horizon(self, horizon, T):
        """Aligned blocks exactly tile [0, horizon) without overlap."""
        covered = []
        for start, stop in windows_of(horizon, T, "blocks"):
            assert start < stop
            covered.extend(range(start, stop))
        assert covered == list(range(horizon))

    @given(horizon=st.integers(1, 50), T=st.integers(1, 50))
    def test_sliding_windows_well_formed(self, horizon, T):
        wins = list(windows_of(horizon, T, "sliding"))
        assert wins[0][0] == 0
        assert wins[-1][1] == horizon
        for (s1, e1), (s2, e2) in zip(wins, wins[1:]):
            assert s2 == s1 + 1 and e2 == e1 + 1


class TestSparklineProperty:
    @given(vals=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
           width=st.integers(1, 50))
    def test_length_bounded_by_width(self, vals, width):
        s = sparkline(vals, width=width)
        assert 1 <= len(s) <= max(width, len(vals) if len(vals) <= width else width)

    @given(vals=st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    def test_chars_from_bar_alphabet(self, vals):
        assert set(sparkline(vals)) <= set("▁▂▃▄▅▆▇█")
