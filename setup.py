"""Legacy shim: enables `pip install -e . --no-build-isolation` on
environments without the `wheel` package (offline editable install)."""
from setuptools import setup

setup()
