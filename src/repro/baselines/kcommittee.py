"""KLO's k-committee protocol and counting by doubling (STOC'10, §5–6).

The reproduced paper compares against reference [7]'s *dissemination*
procedure; [7]'s headline algorithm, however, is **counting** in
1-interval connected networks via *k-committee election* — included here
to complete the baseline faithfully.

k-committee election (parameter k)
----------------------------------
``k`` cycles, each of a polling and a selection phase of ``k − 1`` rounds:

* **polling** — every node floods the smallest id of an *uncommitted*
  node it has heard of this cycle (its own id while uncommitted).
* **selection** — the node that sees *itself* as that minimum is the
  leader; it commits to its own committee and floods an invitation
  naming the smallest *other* uncommitted id it polled.  The named node
  commits to the leader's committee at the cycle's end.

One node joins a leader per cycle, so committees have ≤ k members
besides the leader; with ``k ≥ n`` the (unique, global) leader absorbs
everyone.  With ``k < n`` more than one committee must form.

k-verification (k rounds)
-------------------------
Every node repeatedly broadcasts its committee id and ANDs an accept
flag: hearing a different committee (or an uncommitted node) clears it,
and cleared flags propagate.  With two or more committees, 1-interval
connectivity guarantees an inter-committee edge in round 0, so at least
one node rejects; with one committee every flag survives.

Counting (doubling loop)
------------------------
Run election + verification for k = 1, 2, 4, …; the first k on which
*every* node accepts satisfies ``n ≤ 2k`` (and ``k < 2n``), giving a
2-approximate count in O(n²) rounds — the KLO bound.  The loop runs each
stage on consecutive segments of the same dynamic graph via
:class:`~repro.sim.network.ShiftedNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.engine import DynamicNetwork, run
from ..sim.messages import Message
from ..sim.node import NodeAlgorithm, RoundContext
from ..sim.network import ShiftedNetwork

__all__ = ["KCommitteeNode", "CountingOutcome", "klo_counting", "stage_rounds"]

_INF = float("inf")


def stage_rounds(k: int) -> int:
    """Rounds one election + verification stage needs: 2k·max(k−1, 1) + k."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 2 * k * max(k - 1, 1) + k


class KCommitteeNode(NodeAlgorithm):
    """Per-node state machine for one (election + verification) stage.

    After the stage, :attr:`committee` holds the committee id (a leader's
    node id) or ``None`` if never invited, and :attr:`accept` the
    verification verdict.
    """

    def __init__(self, node: int, k: int, initial_tokens: frozenset, param_k: int) -> None:
        super().__init__(node, k, initial_tokens)
        if param_k < 1:
            raise ValueError(f"committee parameter must be >= 1, got {param_k}")
        self.param_k = param_k
        self.committee: Optional[int] = None
        self.accept = True
        # per-cycle polling state
        self._min_uncommitted: float = _INF
        self._second_uncommitted: float = _INF
        self._pending_invite: Optional[Tuple[int, int]] = None

    # --- schedule ---------------------------------------------------------

    @property
    def _phase_len(self) -> int:
        # k−1 per KLO; floored at 1 so the k=1 stage can still elect the
        # trivial single-node committee (n=1 accepts at the first stage)
        return max(self.param_k - 1, 1)

    def _locate(self, r: int) -> Tuple[str, int, int]:
        """Map a round index to (stage, cycle, offset-within-phase)."""
        cycle_len = 2 * self._phase_len
        formation = self.param_k * cycle_len
        if cycle_len > 0 and r < formation:
            cycle, within = divmod(r, cycle_len)
            if within < self._phase_len:
                return ("poll", cycle, within)
            return ("select", cycle, within - self._phase_len)
        return ("verify", 0, r - formation)

    # --- engine interface ------------------------------------------------------

    def send(self, ctx: RoundContext) -> Sequence[Message]:
        r = ctx.round_index
        if r >= stage_rounds(self.param_k):
            return []
        stage, cycle, offset = self._locate(r)

        if stage == "poll":
            if offset == 0:
                # new cycle: forget the previous cycle's polling results
                self._min_uncommitted = (
                    self.node if self.committee is None else _INF
                )
                self._second_uncommitted = _INF
                self._pending_invite = None
            if self._min_uncommitted is _INF:
                return []
            return [self._ctl(("poll", self._min_uncommitted))]

        if stage == "select":
            if offset == 0:
                # leadership is decided ONCE, in cycle 0, when everyone is
                # still uncommitted — so "smallest uncommitted id I polled"
                # means "smallest id in my k−1 neighbourhood".  Later
                # cycles must not self-elect (a small committed id would no
                # longer appear in polls, and a spurious second leader
                # would split the committee).
                if (
                    cycle == 0
                    and self.committee is None
                    and self._min_uncommitted == self.node
                ):
                    self.committee = self.node
                    invitee = self._second_uncommitted
                    if invitee is not _INF:
                        self._pending_invite = (self.node, int(invitee))
                elif self.committee == self.node:
                    # an existing leader invites the smallest uncommitted
                    # node it polled this cycle
                    if self._min_uncommitted is not _INF:
                        self._pending_invite = (
                            self.node,
                            int(self._min_uncommitted),
                        )
            if self._pending_invite is not None:
                return [self._ctl(("invite", *self._pending_invite))]
            return []

        # verification
        return [self._ctl(("verify", self.committee, self.accept))]

    def receive(self, ctx: RoundContext, inbox: Sequence[Message]) -> None:
        r = ctx.round_index
        if r >= stage_rounds(self.param_k):
            return
        stage, cycle, offset = self._locate(r)

        for msg in inbox:
            payload = msg.payload
            if not isinstance(payload, tuple) or not payload:
                continue
            kind = payload[0]
            if kind == "poll" and stage == "poll":
                pid = float(payload[1])
                self._note_uncommitted(pid)
            elif kind == "invite":
                leader, invitee = int(payload[1]), int(payload[2])
                if invitee == self.node and self.committee is None:
                    self.committee = leader
                # forward invitations while the phase lasts
                if self._pending_invite is None and stage == "select":
                    self._pending_invite = (leader, invitee)
            elif kind == "verify" and stage == "verify":
                their_committee, their_accept = payload[1], payload[2]
                if their_committee != self.committee or not their_accept:
                    self.accept = False

        if stage == "verify" and self.committee is None:
            # an uncommitted node can never verify a single committee
            self.accept = False

    def finished(self, ctx: RoundContext) -> bool:
        return ctx.round_index + 1 >= stage_rounds(self.param_k)

    # --- helpers ----------------------------------------------------------------

    def _note_uncommitted(self, pid: float) -> None:
        if pid < self._min_uncommitted:
            if self._min_uncommitted is not _INF and self._min_uncommitted != pid:
                self._second_uncommitted = min(
                    self._second_uncommitted, self._min_uncommitted
                )
            self._min_uncommitted = pid
        elif pid != self._min_uncommitted:
            self._second_uncommitted = min(self._second_uncommitted, pid)

    def _ctl(self, payload: tuple) -> Message:
        return Message(
            sender=self.node,
            tokens=frozenset(),
            payload=payload,
            payload_cost=1,
            tag="kcommittee",
        )


@dataclass
class CountingOutcome:
    """Result of the KLO counting loop.

    Attributes
    ----------
    k:
        The accepted committee parameter; satisfies ``n ≤ 2k`` and
        ``k < 2n`` on 1-interval connected networks.
    committees:
        Final node → committee-leader map from the accepted stage.
    stages:
        Per-stage diagnostics (k tried, rounds, tokens, accepted).
    rounds_used, tokens_sent:
        Totals across all stages.
    """

    k: int
    committees: Dict[int, Optional[int]]
    stages: List[Dict[str, object]] = field(default_factory=list)
    rounds_used: int = 0
    tokens_sent: int = 0

    @property
    def estimate(self) -> int:
        """The 2-approximate size estimate (= accepted k)."""
        return self.k


def klo_counting(
    network: DynamicNetwork, max_k: Optional[int] = None
) -> CountingOutcome:
    """Count the network by the doubling loop; see module docstring.

    Requires 1-interval connectivity of ``network`` across the total
    O(n²) rounds consumed (traces with ``extend="hold"`` or generators
    are fine).  Connectivity is a *precondition*, not detected: on a
    disconnected network each component verifies its own committee and
    the count is silently wrong (inherited from KLO's model).  Raises
    ``RuntimeError`` if ``max_k`` is exhausted without acceptance.
    """
    n = network.n
    limit = max_k if max_k is not None else 2 * n
    stages: List[Dict[str, object]] = []
    offset = 0
    rounds_total = 0
    tokens_total = 0
    k = 1
    while k <= limit:
        budget = stage_rounds(k)
        result = run(
            ShiftedNetwork(network, offset),
            lambda v, kk, init, _k=k: KCommitteeNode(v, kk, init, param_k=_k),
            k=0,
            initial={},
            max_rounds=budget,
            stop_when_finished=False,
        )
        algs = result.algorithms
        assert algs is not None
        accepted = all(a.accept for a in algs.values())
        stages.append(
            {
                "k": k,
                "rounds": budget,
                "tokens": result.metrics.tokens_sent,
                "accepted": accepted,
            }
        )
        offset += budget
        rounds_total += budget
        tokens_total += result.metrics.tokens_sent
        if accepted:
            return CountingOutcome(
                k=k,
                committees={v: a.committee for v, a in algs.items()},
                stages=stages,
                rounds_used=rounds_total,
                tokens_sent=tokens_total,
            )
        k *= 2
    raise RuntimeError(
        f"counting did not accept for any k <= {limit} "
        f"(network not 1-interval connected, or max_k too small)"
    )
