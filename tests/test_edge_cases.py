"""Edge-case sweep across the library: degenerate sizes, empty inputs,
boundary parameters, and combined engine features."""

import pytest

from repro.baselines.flooding import make_flood_all_factory
from repro.core.algorithm1 import make_algorithm1_factory
from repro.core.algorithm2 import Algorithm2Node, make_algorithm2_factory
from repro.core.analysis import CostParams, hinet_interval_comm, klo_interval_comm
from repro.experiments.pareto import pareto_frontier
from repro.experiments.scenarios import hinet_interval_scenario
from repro.graphs.generators.hinet import HiNetParams, generate_hinet
from repro.graphs.generators.static import complete_graph, path_graph, static_trace
from repro.graphs.properties import is_hinet
from repro.graphs.trace import GraphTrace
from repro.roles import Role
from repro.sim.engine import SynchronousEngine, run
from repro.sim.messages import Message, initial_assignment
from repro.sim.topology import Snapshot


class TestDegenerateInstances:
    def test_zero_tokens_everything_trivially_complete(self):
        trace = static_trace(path_graph(4), rounds=3)
        res = run(trace, make_flood_all_factory(), k=0, initial={},
                  max_rounds=3)
        assert res.complete
        assert res.metrics.tokens_sent == 0

    def test_single_node_network(self):
        trace = GraphTrace([Snapshot.from_edges(1, [])])
        res = run(trace, make_flood_all_factory(), k=2,
                  initial={0: frozenset({0, 1})}, max_rounds=1)
        assert res.complete

    def test_k_larger_than_n(self):
        n, k = 4, 10
        trace = static_trace(complete_graph(n), rounds=10)
        res = run(trace, make_flood_all_factory(), k=k,
                  initial=initial_assignment(k, n, mode="spread"),
                  max_rounds=10, stop_when_complete=True)
        assert res.complete

    def test_algorithm1_with_no_initial_tokens_anywhere(self):
        scenario = hinet_interval_scenario(
            n0=20, theta=6, k=2, alpha=2, L=2, seed=1,
        )
        res = run(
            scenario.trace,
            make_algorithm1_factory(T=int(scenario.params["T"]), M=4),
            k=2, initial={}, max_rounds=24,
        )
        # nothing to disseminate, nothing sent, not complete (k=2 missing)
        assert res.metrics.tokens_sent == 0
        assert not res.complete

    def test_algorithm2_everyone_starts_full(self):
        scenario = hinet_interval_scenario(
            n0=12, theta=4, k=2, alpha=2, L=2, seed=2,
        )
        full = {v: frozenset({0, 1}) for v in range(12)}
        res = run(scenario.trace, make_algorithm2_factory(M=11), k=2,
                  initial=full, max_rounds=11, stop_when_complete=True)
        assert res.complete
        assert res.metrics.completion_round == 1  # detected after round 1


class TestBoundaryParameters:
    def test_hinet_two_nodes(self):
        params = HiNetParams(n=2, theta=1, num_heads=1, T=2, phases=2, L=1)
        scen = generate_hinet(params, seed=0)
        assert is_hinet(scen.trace, 2, 1)

    def test_hinet_all_nodes_heads_or_gateways(self):
        # n = heads + gateways exactly; zero plain members
        params = HiNetParams(n=7, theta=4, num_heads=4, T=2, phases=2, L=2)
        scen = generate_hinet(params, seed=0)
        snap = scen.trace.snapshot(0)
        members = [v for v in range(7) if snap.role(v) is Role.MEMBER]
        assert members == []
        assert scen.mean_members == 0

    def test_cost_model_theta_zero(self):
        p = CostParams(n0=10, theta=0, nm=5, nr=1, k=2, alpha=1, L=1)
        # phases = ceil(0/1)+1 = 1
        assert hinet_interval_comm(p) == 1 * 5 * 2 + 5 * 1 * 2

    def test_cost_model_k_zero(self):
        p = CostParams(n0=10, theta=3, nm=5, nr=1, k=0)
        assert hinet_interval_comm(p) == 0
        assert klo_interval_comm(p) == 0

    def test_cost_model_nm_equals_n0_rejected_only_beyond(self):
        CostParams(n0=10, theta=3, nm=10, nr=1, k=2)  # nm == n0 allowed
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=3, nm=11, nr=1, k=2)


class TestCombinedEngineFeatures:
    def test_loss_plus_latency(self):
        trace = static_trace(path_graph(5), rounds=60)
        res = run(trace, make_flood_all_factory(), k=1,
                  initial={0: frozenset({0})}, max_rounds=60,
                  stop_when_complete=True,
                  loss_p=0.2, loss_seed=3, latency=2)
        assert res.complete
        assert res.metrics.lost_deliveries > 0

    def test_adaptive_plus_trace_recording(self):
        from repro.graphs.adversary import QuarantineAdversary

        adv = QuarantineAdversary(5, seed=1)
        engine = SynchronousEngine(record_knowledge=True)
        res = engine.run(adv, make_flood_all_factory(), k=1,
                         initial={2: frozenset({0})}, max_rounds=10,
                         stop_when_complete=True)
        assert res.complete
        assert res.trace is not None
        assert res.trace.first_heard(2, 0) == 0  # source knows from start?
        # source held it from the beginning: first snapshot already has it
        hops = res.trace.token_path(0)
        assert hops  # the token moved

    def test_latency_with_stepping(self):
        trace = static_trace(path_graph(3), rounds=10)
        engine = SynchronousEngine(latency=2)
        active = engine.start(trace, make_flood_all_factory(), k=1,
                              initial={0: frozenset({0})}, max_rounds=10,
                              stop_when_complete=True)
        active.step()
        assert 0 not in active.algorithms[1].TA  # still in flight
        active.step()
        assert 0 in active.algorithms[1].TA

    def test_loss_on_unicast_paths(self):
        """Algorithm 2 member uploads survive loss via head-change
        re-uploads or simply because heads rebroadcast."""
        scenario = hinet_interval_scenario(
            n0=16, theta=4, k=2, alpha=2, L=2, seed=5,
        )
        res = run(scenario.trace, make_algorithm2_factory(M=40), k=2,
                  initial=scenario.initial, max_rounds=40,
                  stop_when_complete=True, loss_p=0.15, loss_seed=9)
        assert res.complete


class TestParetoEdge:
    def test_empty_input(self):
        assert pareto_frontier([], "x", "y") == []

    def test_all_none(self):
        assert pareto_frontier([{"x": None, "y": 1}], "x", "y") == []


class TestMessageEdge:
    def test_tag_preserved(self):
        m = Message.broadcast(0, {1}, tag="hello")
        assert m.tag == "hello"

    def test_frozen(self):
        m = Message.broadcast(0, {1})
        with pytest.raises(AttributeError):
            m.sender = 5

    def test_algorithm2_repr(self):
        node = Algorithm2Node(3, 5, frozenset({1}), M=4)
        assert "node=3" in repr(node)
        assert "1/5" in repr(node)
