"""Tests for the Table 2 cost model and Table 3 reproduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    TABLE3_PAPER,
    TABLE3_PARAMS,
    TABLE3_PARAMS_ONE,
    CostParams,
    hinet_interval_comm,
    hinet_interval_time,
    hinet_one_comm,
    hinet_one_time,
    klo_interval_comm,
    klo_interval_time,
    klo_one_comm,
    klo_one_time,
    table2,
    table3,
)


class TestTable3Exact:
    """The paper's published Table 3 numbers, row by row."""

    def test_klo_interval_row(self):
        assert klo_interval_time(TABLE3_PARAMS) == 180
        assert klo_interval_comm(TABLE3_PARAMS) == 8000

    def test_hinet_interval_row(self):
        assert hinet_interval_time(TABLE3_PARAMS) == 126
        assert hinet_interval_comm(TABLE3_PARAMS) == 4320

    def test_klo_one_row(self):
        assert klo_one_time(TABLE3_PARAMS_ONE) == 99
        assert klo_one_comm(TABLE3_PARAMS_ONE) == 79200

    def test_hinet_one_row_documents_paper_slip(self):
        """The formula yields 50 720; the paper prints 51 680 (a 960-token
        arithmetic slip in the original)."""
        assert hinet_one_time(TABLE3_PARAMS_ONE) == 99
        assert hinet_one_comm(TABLE3_PARAMS_ONE) == 50720
        assert TABLE3_PAPER["(1, L)-HiNet"]["comm_tokens"] == 51680

    def test_table3_rows_complete(self):
        rows = table3()
        assert [r["model"] for r in rows] == list(TABLE3_PAPER)
        for row in rows:
            published = TABLE3_PAPER[row["model"]]
            assert row["time_rounds"] == published["time_rounds"]
        # three of four comm entries match the paper exactly
        matches = sum(
            1 for row in rows
            if row["comm_tokens"] == TABLE3_PAPER[row["model"]]["comm_tokens"]
        )
        assert matches == 3


class TestValidation:
    def test_param_bounds(self):
        with pytest.raises(ValueError):
            CostParams(n0=0, theta=0, nm=0, nr=0, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=11, nm=0, nr=0, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=5, nm=11, nr=0, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=5, nm=5, nr=-1, k=1)
        with pytest.raises(ValueError):
            CostParams(n0=10, theta=5, nm=5, nr=0, k=1, alpha=0)

    def test_interval_T(self):
        assert TABLE3_PARAMS.interval_T == 18

    def test_table2_accepts_distinct_one_interval_params(self):
        rows = table2(TABLE3_PARAMS, TABLE3_PARAMS_ONE)
        assert rows[3]["comm_tokens"] == 50720
        rows_same = table2(TABLE3_PARAMS)
        assert rows_same[3]["comm_tokens"] == hinet_one_comm(TABLE3_PARAMS)


@st.composite
def cost_params(draw):
    n0 = draw(st.integers(2, 400))
    theta = draw(st.integers(1, n0))
    nm = draw(st.integers(0, n0 - 1))
    nr = draw(st.integers(0, 20))
    k = draw(st.integers(1, 64))
    alpha = draw(st.integers(1, 10))
    L = draw(st.integers(1, 3))
    return CostParams(n0=n0, theta=theta, nm=nm, nr=nr, k=k, alpha=alpha, L=L)


class TestModelProperties:
    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_costs_non_negative(self, p):
        for fn in (klo_interval_time, klo_interval_comm, hinet_interval_time,
                   hinet_interval_comm, klo_one_time, klo_one_comm,
                   hinet_one_time, hinet_one_comm):
            assert fn(p) >= 0

    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_comm_linear_in_k(self, p):
        """All Table 2 communication formulas are exactly linear in k."""
        from dataclasses import replace

        p2 = replace(p, k=2 * p.k)
        for fn in (klo_interval_comm, hinet_interval_comm, klo_one_comm,
                   hinet_one_comm):
            assert fn(p2) == pytest.approx(2 * fn(p))

    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_hinet_one_beats_klo_one_when_nr_small(self, p):
        """The paper's headline: if n_r < n0 - 1, Algorithm 2 strictly
        undercuts 1-interval KLO communication (for nm > 0)."""
        from dataclasses import replace

        p = replace(p, nr=0)
        if p.nm > 0 and p.k > 0:
            assert hinet_one_comm(p) < klo_one_comm(p)
        else:
            assert hinet_one_comm(p) <= klo_one_comm(p)

    @given(p=cost_params())
    @settings(max_examples=100, deadline=None)
    def test_hinet_interval_time_beats_klo_when_theta_small(self, p):
        """Time: (⌈θ/α⌉+1) phases vs ⌈n0/(αL)⌉ phases — HiNet wins whenever
        its phase count is smaller, both paying (k+αL) per phase."""
        from math import ceil

        hinet_phases = ceil(p.theta / p.alpha) + 1
        klo_phases = ceil(p.n0 / (p.alpha * p.L))
        assert (hinet_interval_time(p) <= klo_interval_time(p)) == (
            hinet_phases <= klo_phases
        )
