"""Reproduction of the paper's Tables 2 and 3.

Two layers:

* **Analytic** — evaluate the Table 2 closed forms (exact reproduction;
  Tables 2 and 3 in the paper are analytical, not measured).
* **Simulated** — run the four algorithms on verified generated scenarios
  with the same parameters and report measured rounds / tokens next to
  the predictions.  The check is on *shape*: HiNet ≪ KLO in tokens at
  similar-or-better rounds.  Fairness note: each model pair (Algorithm 1
  vs T-interval KLO; Algorithm 2 vs 1-interval KLO) runs on the *same*
  trace — the flat baselines simply ignore the role annotations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.analysis import (
    TABLE3_PAPER,
    TABLE3_PARAMS,
    TABLE3_PARAMS_ONE,
    CostParams,
    table2,
)
from ..sim.rng import SeedLike, derive_seed
from .cache import CacheLike
from .runner import RunRecord, execute
from .scenarios import hinet_interval_scenario, hinet_one_scenario

__all__ = [
    "analytic_table2",
    "analytic_table3",
    "simulated_table3",
]


def analytic_table2(
    params: CostParams, params_one: Optional[CostParams] = None
) -> List[Dict[str, object]]:
    """Table 2 evaluated at arbitrary parameters (thin re-export for the bench)."""
    return table2(params, params_one)


def analytic_table3() -> List[Dict[str, object]]:
    """Table 3: formulas at the paper's parameters, annotated with the
    published values and the deviation (zero on three rows; the fourth
    carries the paper's 960-token arithmetic slip — see EXPERIMENTS.md)."""
    rows = table2(TABLE3_PARAMS, TABLE3_PARAMS_ONE)
    for row in rows:
        published = TABLE3_PAPER[str(row["model"])]
        row["paper_time"] = published["time_rounds"]
        row["paper_comm"] = published["comm_tokens"]
        row["comm_deviation"] = float(row["comm_tokens"]) - published["comm_tokens"]
    return rows


def simulated_table3(
    seed: SeedLike = 2013, n0: int = 100, cache: CacheLike = None
) -> List[Dict[str, object]]:
    """Measured counterpart of Table 3 on verified generated scenarios.

    Returns one row per Table 3 line with measured completion round and
    tokens sent.  Scenario parameters follow the paper: θ = 0.3·n₀ (30 at
    the paper's n₀=100 — the ratio, not the absolute count, carries the
    advantage: the cost model itself shows HiNet *losing* when θ/n₀ grows
    too large), k=8, α=5, L=2; member re-affiliation pressure is higher in
    the (1, L) scenario.

    The four rows execute by registry name through the unified
    :func:`~repro.experiments.runner.execute` path; with ``cache`` set, a
    re-run of the table is four cache hits.
    """
    k, alpha, L = 8, 5, 2
    theta = max(round(0.3 * n0), alpha)

    interval = hinet_interval_scenario(
        n0=n0, theta=theta, k=k, alpha=alpha, L=L,
        reaffiliation_p=0.1, churn_p=0.02, seed=derive_seed(seed, "interval"),
    )
    one = hinet_one_scenario(
        n0=n0, theta=theta, k=k, L=L,
        reaffiliation_p=0.3, head_churn=2, churn_p=0.02,
        seed=derive_seed(seed, "one"),
    )

    # Order mirrors Table 3's rows (zipped with ``analytic_table3`` below).
    records: List[RunRecord] = [
        execute("klo-interval", interval, cache=cache),
        execute("algorithm1", interval, cache=cache),
        execute("klo-one", one, cache=cache),
        execute("algorithm2", one, cache=cache),
    ]

    analytic = analytic_table3()
    rows: List[Dict[str, object]] = []
    for rec, ana in zip(records, analytic):
        rows.append(
            {
                "model": ana["model"],
                "analytic_time": ana["time_rounds"],
                "measured_completion": rec.completion_round,
                "analytic_comm": ana["comm_tokens"],
                "measured_comm": rec.tokens_sent,
                "complete": rec.complete,
            }
        )
    return rows
