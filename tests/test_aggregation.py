"""Tests for the aggregation family: push-sum, extrema flooding, exact."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.exact import aggregate_exact
from repro.aggregation.minmax import make_extremum_factory
from repro.aggregation.pushsum import make_pushsum_factory
from repro.experiments.scenarios import hinet_one_scenario
from repro.graphs.generators.static import complete_graph, path_graph, static_trace
from repro.graphs.generators.worstcase import shuffled_path_trace
from repro.sim.engine import run


def _values(n, spread=10.0):
    return {v: float(v) * spread / max(n - 1, 1) for v in range(n)}


class TestPushSum:
    def _run(self, trace, n, values, rounds, seed=1):
        return run(trace, make_pushsum_factory(values, seed=seed), k=0,
                   initial={}, max_rounds=rounds, stop_when_finished=False)

    def test_converges_on_complete_graph(self):
        n = 16
        values = _values(n)
        truth = sum(values.values()) / n
        trace = static_trace(complete_graph(n), rounds=100)
        res = self._run(trace, n, values, rounds=100)
        estimates = [a.estimate for a in res.algorithms.values()]
        assert max(abs(e - truth) for e in estimates) < 1e-6

    def test_converges_on_dynamic_graph(self):
        n = 12
        values = _values(n)
        truth = sum(values.values()) / n
        trace = shuffled_path_trace(n, rounds=400, seed=3)
        res = self._run(trace, n, values, rounds=400, seed=3)
        estimates = [a.estimate for a in res.algorithms.values()]
        assert max(abs(e - truth) for e in estimates) < 1e-3

    def test_mass_conservation(self):
        n = 10
        values = _values(n)
        trace = static_trace(complete_graph(n), rounds=50)
        res = self._run(trace, n, values, rounds=50)
        algs = res.algorithms.values()
        assert sum(a.s for a in algs) == pytest.approx(sum(values.values()))
        assert sum(a.w for a in algs) == pytest.approx(n)

    def test_weights_positive(self):
        n = 8
        trace = static_trace(complete_graph(n), rounds=200)
        res = self._run(trace, n, _values(n), rounds=200)
        assert all(a.w > 0 for a in res.algorithms.values())

    def test_reproducible(self):
        n = 8
        trace = static_trace(complete_graph(n), rounds=30)
        a = self._run(trace, n, _values(n), rounds=30, seed=7)
        b = self._run(trace, n, _values(n), rounds=30, seed=7)
        ea = [x.estimate for x in a.algorithms.values()]
        eb = [x.estimate for x in b.algorithms.values()]
        assert ea == eb

    def test_cost_is_one_per_node_round(self):
        n = 9
        trace = static_trace(complete_graph(n), rounds=20)
        res = self._run(trace, n, _values(n), rounds=20)
        assert res.metrics.tokens_sent == n * 20

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_conservation_random_dynamics(self, seed):
        n = 8
        values = _values(n)
        trace = shuffled_path_trace(n, rounds=30, seed=seed)
        res = self._run(trace, n, values, rounds=30, seed=seed)
        assert sum(a.s for a in res.algorithms.values()) == pytest.approx(
            sum(values.values())
        )


class TestExtremum:
    def test_min_exact_on_static(self):
        n = 10
        values = {v: float((v * 7) % n) for v in range(n)}
        trace = static_trace(path_graph(n), rounds=2 * n)
        res = run(trace, make_extremum_factory(values, op=min), k=0,
                  initial={}, max_rounds=2 * n, stop_when_finished=False)
        assert all(a.best == 0.0 for a in res.algorithms.values())

    def test_max_exact_on_dynamic_with_repetition(self):
        n = 14
        values = {v: float(v) for v in range(n)}
        trace = shuffled_path_trace(n, rounds=n - 1, seed=5)
        res = run(trace, make_extremum_factory(values, op=max, rounds=n - 1),
                  k=0, initial={}, max_rounds=n - 1, stop_when_finished=False)
        assert all(a.best == float(n - 1) for a in res.algorithms.values())

    def test_improvement_only_cheaper_on_static(self):
        n = 12
        values = {v: float(v) for v in range(n)}
        trace = static_trace(path_graph(n), rounds=3 * n)
        lazy = run(trace, make_extremum_factory(values, repeat=False), k=0,
                   initial={}, max_rounds=3 * n, stop_when_finished=False)
        eager = run(trace, make_extremum_factory(values, rounds=3 * n), k=0,
                    initial={}, max_rounds=3 * n, stop_when_finished=False)
        assert all(a.best == 0.0 for a in lazy.algorithms.values())
        assert lazy.metrics.tokens_sent < eager.metrics.tokens_sent

    def test_improvement_only_can_miss_on_dynamics(self):
        """The epidemic-style failure: min holder broadcasts once on an
        edge schedule that hides its eventual audience."""
        from repro.graphs.trace import GraphTrace
        from repro.sim.topology import Snapshot

        rounds = [[(0, 1)], [(0, 1)], [(1, 2)]]
        trace = GraphTrace([Snapshot.from_edges(3, e) for e in rounds])
        values = {0: -5.0, 1: 1.0, 2: 2.0}
        lazy = run(trace, make_extremum_factory(values, repeat=False), k=0,
                   initial={}, max_rounds=3, stop_when_finished=False)
        # node 1 learned -5, but had already gone quiet for it when edge
        # (1,2) appeared? No: learning sets _dirty, so 1 rebroadcasts once
        # at round 1 (to 0 only), then stays quiet; node 2 never hears it.
        assert lazy.algorithms[2].best == 2.0  # missed the minimum
        eager = run(trace, make_extremum_factory(values), k=0,
                    initial={}, max_rounds=3, stop_when_finished=False)
        assert eager.algorithms[2].best == -5.0


class TestExactAggregation:
    @pytest.fixture(scope="class")
    def scenario(self):
        return hinet_one_scenario(n0=20, theta=6, k=1, L=2, seed=13)

    def test_sum_exact_hierarchical(self, scenario):
        values = _values(20)
        out = aggregate_exact(scenario.trace, values, fold=sum)
        assert out.exact
        assert all(r == pytest.approx(out.truth) for r in out.results.values())

    def test_flat_variant_exact_but_dearer(self, scenario):
        values = _values(20)
        hier = aggregate_exact(scenario.trace, values, hierarchical=True)
        flat = aggregate_exact(scenario.trace, values, hierarchical=False)
        assert hier.exact and flat.exact
        assert hier.tokens_sent < flat.tokens_sent

    def test_custom_fold(self, scenario):
        values = {v: 1.0 for v in range(20)}
        out = aggregate_exact(scenario.trace, values, fold=len)
        assert out.truth == 20
        assert all(r == 20 for r in out.results.values())

    def test_insufficient_rounds_not_exact(self, scenario):
        out = aggregate_exact(scenario.trace, _values(20), rounds=1)
        assert not out.exact
