"""Evaluate symbolic envelopes against a resolved (scenario, plan) pair.

:func:`predict` is the numeric half of the cost-model engine: it plans a
run exactly as :func:`repro.experiments.runner.execute` would (same spec,
same overrides), binds every symbol the spec's
:class:`~repro.analysis.envelopes.CostEnvelope` consumes from the
scenario parameters and the resolved :class:`~repro.registry.RunPlan`,
and returns integer bounds a measured run can be compared against.

:func:`argmin_bound` answers parameter-space queries ("which α minimises
Algorithm 1's round bound at n=100?") by evaluating the algebra over a
grid — no simulation time is burned.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import sympy

from ..registry import AlgorithmSpec, RunPlan, get_spec
from .envelopes import CostEnvelope, envelope_for
from .symbols import SYMBOLS

__all__ = ["Prediction", "argmin_bound", "evaluate", "predict"]


@dataclass(frozen=True)
class Prediction:
    """Numeric envelope for one planned (algorithm, scenario) execution.

    ``rounds``/``messages``/``tokens`` are the evaluated upper bounds the
    run's measured counters must stay inside; ``tokens_form`` records
    whether the token bound is the paper's ``"table2"`` expression or the
    ``"structural"`` fallback.  ``budget`` is the resolved
    ``RunPlan.max_rounds`` (for ``"theorem"`` envelopes with no override
    it equals ``rounds``).  ``rounds_floor`` is the Haeupler–Kuhn lower
    envelope where one applies.
    """

    algorithm: str
    scenario: str
    kind: str
    n: int
    k: int
    rounds: int
    messages: int
    tokens: int
    tokens_form: str
    budget: int
    rounds_floor: Optional[int] = None
    bindings: Mapping[str, Union[int, float]] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat dict for table formatters."""
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "rounds_bound": self.rounds,
            "messages_bound": self.messages,
            "tokens_bound": self.tokens,
            "tokens_form": self.tokens_form,
            "floor": self.rounds_floor if self.rounds_floor is not None else "-",
        }


def _as_number(value: Union[int, float]) -> sympy.Expr:
    """Exact sympy number: ints stay Integer, floats become Rational."""
    if isinstance(value, bool):  # guard: bools are ints in Python
        return sympy.Integer(int(value))
    if isinstance(value, int):
        return sympy.Integer(value)
    return sympy.Rational(str(value))


def evaluate(expr: sympy.Expr, bindings: Mapping[str, Union[int, float]]) -> int:
    """Substitute named bindings into ``expr`` and return ``⌈value⌉``.

    Raises ``ValueError`` when the bindings leave free symbols — the
    caller decides whether a fallback expression applies.
    """
    subs = {
        SYMBOLS[name]: _as_number(value)
        for name, value in bindings.items()
        if name in SYMBOLS and isinstance(value, (int, float))
    }
    value = sympy.sympify(expr).subs(subs)
    free = value.free_symbols
    if free:
        missing = ", ".join(sorted(str(s) for s in free))
        raise ValueError(
            f"cannot evaluate bound {sympy.sstr(expr)}: unbound symbol(s) "
            f"{missing} (bound: {sorted(bindings)})"
        )
    return int(sympy.ceiling(value))


def _bindings(spec: AlgorithmSpec, scenario, plan: RunPlan) -> Dict[str, Union[int, float]]:
    """Symbol bindings from a scenario plus its resolved plan.

    Scenario model parameters bind first; the resolved plan supplies the
    phase count ``M``, the budget ``R`` and any plan-level knobs (``A``,
    ``T``) the scenario does not carry.
    """
    binds: Dict[str, Union[int, float]] = {
        "n": int(scenario.n),
        "k": int(scenario.k),
        "R": int(plan.max_rounds),
    }
    param_map = (
        ("T", "T"), ("L", "L"), ("alpha", "alpha"), ("theta", "theta"),
        ("nm", "nm"), ("nr", "nr"), ("num_heads", "H"), ("d", "d"),
        ("phases", "M"),
    )
    for key, name in param_map:
        value = scenario.params.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            binds[name] = value
    for key, name in (("M", "M"), ("A", "A"), ("T", "T")):
        value = plan.key_params.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            binds.setdefault(name, value)
    if plan.phase_length:
        binds.setdefault("T", int(plan.phase_length))
    return binds


def predict(
    algorithm: Union[str, AlgorithmSpec],
    scenario,
    plan: Optional[RunPlan] = None,
    **overrides,
) -> Prediction:
    """Evaluate an algorithm's analytical envelope on one scenario.

    ``overrides`` are the same spec knobs :func:`~repro.experiments.runner.execute`
    accepts (``rounds=…``, ``seed=…``, ``A=…``), so prediction and
    execution resolve the *same* :class:`~repro.registry.RunPlan`.  Pass
    ``plan=`` to reuse an already-resolved plan (the monitor-assembly
    path) instead of re-planning.

    Raises ``LookupError`` when the spec has no registered envelope and
    ``ValueError`` when the scenario cannot bind every symbol a bound
    needs (after fallbacks).
    """
    spec = algorithm if isinstance(algorithm, AlgorithmSpec) else get_spec(algorithm)
    env = envelope_for(spec.name)
    if env is None:
        raise LookupError(
            f"no analytical envelope registered for algorithm {spec.name!r}"
        )
    if plan is None:
        spec.validate_scenario(scenario)
        plan = spec.plan(scenario, **overrides)
    binds = _bindings(spec, scenario, plan)

    rounds_bound = evaluate(env.rounds, binds)
    messages_bound = evaluate(env.messages, binds)
    try:
        tokens_bound = evaluate(env.tokens, binds)
        tokens_form = "structural" if env.tokens_fallback is None else "table2"
    except ValueError:
        if env.tokens_fallback is None:
            raise
        tokens_bound = evaluate(env.tokens_fallback, binds)
        tokens_form = "structural"

    floor = None
    if env.rounds_floor is not None and scenario.n > 1:
        floor = evaluate(env.rounds_floor, binds)

    return Prediction(
        algorithm=spec.name,
        scenario=getattr(scenario, "name", "?"),
        kind=env.kind,
        n=int(scenario.n),
        k=int(scenario.k),
        rounds=rounds_bound,
        messages=messages_bound,
        tokens=tokens_bound,
        tokens_form=tokens_form,
        budget=int(plan.max_rounds),
        rounds_floor=floor,
        bindings=binds,
    )


def argmin_bound(
    algorithm: Union[str, AlgorithmSpec, CostEnvelope],
    metric: str = "rounds",
    vary: Optional[Mapping[str, Iterable[Union[int, float]]]] = None,
    **fixed: Union[int, float],
) -> Tuple[Dict[str, Union[int, float]], int]:
    """Minimise one envelope bound over a discrete parameter grid.

    Pure algebra — no simulation runs.  ``vary`` maps symbol names to
    candidate values; ``fixed`` pins the rest.  Returns
    ``(best_assignment, best_value)``; grid points that leave the bound
    unevaluable are skipped, and an empty feasible grid raises
    ``ValueError``.

    >>> argmin_bound("algorithm1", "rounds",
    ...              vary={"alpha": range(1, 9)},
    ...              n=100, k=8, theta=30, L=2, T=18)[0]["alpha"]
    8
    """
    if isinstance(algorithm, CostEnvelope):
        env = algorithm
    else:
        name = algorithm if isinstance(algorithm, str) else algorithm.name
        env = envelope_for(name)
        if env is None:
            raise LookupError(f"no analytical envelope for {name!r}")
    expr = getattr(env, metric, None)
    if not isinstance(expr, sympy.Expr):
        raise ValueError(
            f"envelope {env.name!r} has no symbolic metric {metric!r} "
            "(pick rounds, messages or tokens)"
        )
    vary = dict(vary or {})
    names = sorted(vary)
    best: Optional[Tuple[Dict[str, Union[int, float]], int]] = None
    for combo in itertools.product(*(list(vary[name]) for name in names)):
        binds = dict(fixed)
        binds.update(zip(names, combo))
        try:
            value = evaluate(expr, binds)
        except ValueError:
            continue
        if best is None or value < best[1]:
            best = (dict(zip(names, combo)), value)
    if best is None:
        raise ValueError(
            f"no grid point could evaluate {metric!r} for {env.name!r} — "
            "bind more symbols"
        )
    return best
