"""Cross-run telemetry aggregation: percentile progress bands.

A 100-seed replication produces 100 :class:`~repro.obs.timeline.RunTimeline`
objects; the question the paper's figures actually answer is distributional
— "how does coverage progress for the *median* seed, and how wide is the
spread?".  :func:`merge_timelines` folds any number of timelines into
:class:`ProgressBands`: per-round coverage/completion percentiles
(nearest-rank, so every reported value is one that actually occurred),
completion-round statistics, and per-role message totals.

Runs of different lengths merge naturally: a run that completed at round
40 holds its final coverage for rounds 41+, matching the semantics of a
finished dissemination (the state simply persists).

:func:`render_dashboard` turns bands into the ``repro report`` dashboard —
plain-text tables by default, GitHub-flavoured markdown with
``markdown=True``.  Feeders: ``experiments/replication.py`` (seed
replications) and ``experiments/sweeps.py`` (parameter sweeps), both of
which can return full :class:`~repro.sim.engine.RunRecord` rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .timeline import RunTimeline

__all__ = ["ProgressBands", "merge_timelines", "render_dashboard"]


def _percentile(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of pre-sorted values (q in [0, 1])."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def _padded(column: Sequence[int], rounds: int) -> List[int]:
    """Extend a per-round series to ``rounds`` by holding its final value."""
    if not column:
        return [0] * rounds
    return list(column) + [column[-1]] * (rounds - len(column))


@dataclass
class ProgressBands:
    """Percentile bands over a set of run timelines.

    ``coverage_p10/p50/p90`` and ``complete_p50`` hold one value per round
    (up to the longest run, shorter runs padded with their final state);
    ``completion_rounds`` is each run's recorded length; ``role_messages``
    maps sender role to the total messages across all runs.
    """

    runs: int = 0
    rounds: int = 0
    coverage_p10: List[int] = field(default_factory=list)
    coverage_p50: List[int] = field(default_factory=list)
    coverage_p90: List[int] = field(default_factory=list)
    complete_p50: List[int] = field(default_factory=list)
    completion_rounds: List[int] = field(default_factory=list)
    role_messages: Dict[str, int] = field(default_factory=dict)
    role_tokens: Dict[str, int] = field(default_factory=dict)

    def completion_summary(self) -> Dict[str, float]:
        """min/median/max of run length in rounds."""
        rs = sorted(self.completion_rounds)
        return {
            "min": rs[0],
            "p50": _percentile(rs, 0.5),
            "max": rs[-1],
        }


def merge_timelines(timelines: Sequence[RunTimeline]) -> ProgressBands:
    """Fold timelines into per-round percentile bands and role totals."""
    timelines = [tl for tl in timelines if tl is not None]
    if not timelines:
        raise ValueError("merge_timelines needs at least one timeline")
    rounds = max(tl.rounds for tl in timelines)
    coverage = [_padded(tl.coverage, rounds) for tl in timelines]
    complete = [_padded(tl.nodes_complete, rounds) for tl in timelines]
    bands = ProgressBands(runs=len(timelines), rounds=rounds)
    for r in range(rounds):
        cov = sorted(col[r] for col in coverage)
        bands.coverage_p10.append(_percentile(cov, 0.10))
        bands.coverage_p50.append(_percentile(cov, 0.50))
        bands.coverage_p90.append(_percentile(cov, 0.90))
        com = sorted(col[r] for col in complete)
        bands.complete_p50.append(_percentile(com, 0.50))
    bands.completion_rounds = [tl.rounds for tl in timelines]
    for tl in timelines:
        for role, column in tl.role_messages.items():
            bands.role_messages[role] = bands.role_messages.get(role, 0) + sum(column)
        for role, column in tl.role_tokens.items():
            bands.role_tokens[role] = bands.role_tokens.get(role, 0) + sum(column)
    return bands


def _sample_rounds(rounds: int, points: int) -> List[int]:
    """Pick ≤ ``points`` representative round indices, always including
    the first and last round."""
    if rounds <= points:
        return list(range(rounds))
    step = (rounds - 1) / (points - 1)
    picked = sorted({round(i * step) for i in range(points)})
    return [min(r, rounds - 1) for r in picked]


def _bar(value: int, peak: int, width: int = 24) -> str:
    filled = 0 if peak <= 0 else round(width * value / peak)
    return "#" * filled + "." * (width - filled)


def _envelope_lines(envelope: Dict[str, object], rounds: int,
                    markdown: bool) -> List[str]:
    """The predicted analytical band, rendered under the completion line.

    ``envelope`` is a plain dict with any of ``rounds``/``messages``/
    ``tokens`` bounds (``repro report`` builds it from
    :func:`repro.analysis.predict`).  The round bound is compared to the
    bands' median run length so the dashboard states, in one line,
    whether the replicated trajectory sat inside the analysis.
    """
    parts = [
        f"{metric} <= {envelope[metric]}"
        for metric in ("rounds", "messages", "tokens")
        if isinstance(envelope.get(metric), (int, float))
    ]
    if not parts:
        return []
    line = "analytical envelope: " + ", ".join(parts)
    bound = envelope.get("rounds")
    if isinstance(bound, (int, float)) and bound > 0:
        ratio = rounds / bound
        verdict = "inside" if ratio <= 1.0 else "OUTSIDE"
        line += f" — median run at {ratio:.2f}x of round bound ({verdict})"
    return [f"_{line}_", ""] if markdown else [line, ""]


def render_dashboard(
    bands: ProgressBands,
    *,
    title: Optional[str] = None,
    markdown: bool = False,
    points: int = 12,
    envelope: Optional[Dict[str, object]] = None,
) -> str:
    """Render bands as the ``repro report`` dashboard.

    Plain text: a progress table with a median-coverage bar chart.
    Markdown: the same tables in GitHub-flavoured pipe syntax.
    ``envelope`` adds the predicted analytical band (see
    :func:`_envelope_lines`).
    """
    out: List[str] = []
    heading = title or f"{bands.runs} runs, {bands.rounds} rounds"
    comp = bands.completion_summary()
    sampled = _sample_rounds(bands.rounds, points)
    peak = bands.coverage_p90[-1] if bands.coverage_p90 else 0

    if markdown:
        out.append(f"## {heading}")
        out.append("")
        out.append(
            f"Completion (rounds): min {comp['min']}, "
            f"median {comp['p50']}, max {comp['max']}."
        )
        out.append("")
        if envelope:
            out.extend(_envelope_lines(envelope, comp["p50"], markdown=True))
        out.append("| round | coverage p10 | p50 | p90 | complete p50 |")
        out.append("| ---: | ---: | ---: | ---: | ---: |")
        for r in sampled:
            out.append(
                f"| {r} | {bands.coverage_p10[r]} | {bands.coverage_p50[r]} "
                f"| {bands.coverage_p90[r]} | {bands.complete_p50[r]} |"
            )
        if bands.role_messages:
            out.append("")
            out.append("| sender role | messages | tokens |")
            out.append("| --- | ---: | ---: |")
            for role in sorted(bands.role_messages):
                out.append(
                    f"| {role} | {bands.role_messages[role]} "
                    f"| {bands.role_tokens.get(role, 0)} |"
                )
    else:
        out.append(heading)
        out.append("=" * len(heading))
        out.append(
            f"completion rounds: min {comp['min']}  "
            f"median {comp['p50']}  max {comp['max']}"
        )
        out.append("")
        if envelope:
            out.extend(_envelope_lines(envelope, comp["p50"], markdown=False))
        out.append(f"{'round':>6} {'p10':>8} {'p50':>8} {'p90':>8}  coverage (p50)")
        for r in sampled:
            out.append(
                f"{r:>6} {bands.coverage_p10[r]:>8} {bands.coverage_p50[r]:>8} "
                f"{bands.coverage_p90[r]:>8}  |{_bar(bands.coverage_p50[r], peak)}|"
            )
        if bands.role_messages:
            out.append("")
            out.append(f"{'sender role':>12} {'messages':>10} {'tokens':>10}")
            for role in sorted(bands.role_messages):
                out.append(
                    f"{role:>12} {bands.role_messages[role]:>10} "
                    f"{bands.role_tokens.get(role, 0):>10}"
                )
    return "\n".join(out)
