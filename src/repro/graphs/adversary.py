"""Adaptive adversaries: topology chosen *after* seeing node knowledge.

The dynamic-network lower-bound literature (KLO §1.3 and follow-ups)
distinguishes the *oblivious* adversary — the whole edge schedule fixed
in advance, which every :class:`~repro.graphs.trace.GraphTrace` models —
from the *adaptive* adversary that inspects protocol state before
committing to round r's graph.  Lower bounds for token dissemination are
proved against the adaptive kind.

The engine supports adaptivity through a second protocol hook: if the
network object exposes ``adaptive_snapshot(r, knowledge)``, the engine
calls it each round with every node's current token set instead of
``snapshot(r)``.  Note the information model: the adversary sees state,
the *nodes* don't see the adversary — matching the standard model.

Three concrete adversaries:

* :class:`KnowledgeClusteringAdversary` — each round builds a Hamiltonian
  path that chains nodes *with identical token sets* consecutively, so
  information can only cross at the few junctions between knowledge
  classes.  This is the classic slow-progress construction: per round the
  number of new (node, token) pairs is bounded by the number of class
  junctions, forcing Θ(n) rounds per token against flooding.
* :class:`QuarantineAdversary` — pushes the best-informed nodes to the
  far end of a path behind the least-informed ones, maximising the hop
  distance between knowledge and ignorance.
* :class:`HaeuplerKuhnAdversary` — the token-aware greedy chain from the
  Haeupler–Kuhn lower-bound construction ("Lower Bounds on Information
  Dissemination in Dynamic Networks"): each round orders the path so
  every consecutive pair has *minimal symmetric difference* of token
  sets, bounding the useful information crossing any edge and forcing
  near-worst-case dissemination time against every one-token-per-round
  protocol.

:func:`materialize_lower_bound_trace` freezes an adaptive adversary into
an oblivious :class:`~repro.graphs.trace.GraphTrace` by playing it
against a flooding-knowledge oracle (the fastest any absorb-only
protocol could possibly learn) — the result is a static, certifiable
scenario every engine tier can run.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional

from ..sim.rng import SeedLike, make_rng
from ..sim.topology import Snapshot
from .trace import GraphTrace

__all__ = [
    "HaeuplerKuhnAdversary",
    "KnowledgeClusteringAdversary",
    "QuarantineAdversary",
    "materialize_lower_bound_trace",
]

Knowledge = Mapping[int, FrozenSet[int]]


class _AdaptiveBase:
    """Common plumbing: size, 1-interval paths, deterministic tie-breaks."""

    def __init__(self, n: int, seed: SeedLike = None) -> None:
        if n < 2:
            raise ValueError(f"need at least two nodes, got {n}")
        self.n = n
        self._rng = make_rng(seed)
        self.rounds_served = 0

    # --- DynamicNetwork protocol ------------------------------------------

    def snapshot(self, r: int) -> Snapshot:
        """Oblivious access is not meaningful for an adaptive adversary."""
        raise RuntimeError(
            "adaptive adversary requires the engine's adaptive_snapshot hook"
        )

    def adaptive_snapshot(self, r: int, knowledge: Knowledge) -> Snapshot:
        """Commit to round ``r``'s graph given current node knowledge."""
        order = self._order(r, knowledge)
        self.rounds_served += 1
        edges = [(order[i], order[i + 1]) for i in range(self.n - 1)]
        return Snapshot.from_edges(self.n, edges)

    # --- strategy ----------------------------------------------------------

    def _order(self, r: int, knowledge: Knowledge) -> List[int]:
        raise NotImplementedError


class KnowledgeClusteringAdversary(_AdaptiveBase):
    """Chain equal-knowledge nodes consecutively (see module docstring)."""

    def _order(self, r: int, knowledge: Knowledge) -> List[int]:
        groups: Dict[FrozenSet[int], List[int]] = {}
        for v in range(self.n):
            groups.setdefault(frozenset(knowledge.get(v, frozenset())), []).append(v)
        # large classes first: junctions sit between the biggest blocks,
        # shuffled within a class so no node id is structurally favoured
        ordered_classes = sorted(
            groups.values(), key=lambda g: (-len(g), min(g))
        )
        order: List[int] = []
        for cls in ordered_classes:
            cls = list(cls)
            self._rng.shuffle(cls)
            order.extend(int(v) for v in cls)
        return order


class QuarantineAdversary(_AdaptiveBase):
    """Path sorted by ascending knowledge; the informed end is maximally far.

    Against single-token flooding from one source this recreates the
    rotating-star effect by distance: the token must traverse the entire
    ignorance gradient, one hop per round.
    """

    def _order(self, r: int, knowledge: Knowledge) -> List[int]:
        return sorted(
            range(self.n),
            key=lambda v: (len(knowledge.get(v, frozenset())), v),
        )


class HaeuplerKuhnAdversary(_AdaptiveBase):
    """Token-aware greedy chain: consecutive nodes know almost the same.

    The Haeupler–Kuhn lower bound hinges on the adversary re-wiring the
    (always-connected) graph each round so that the tokens a node could
    *usefully* receive from its neighbours are as few as possible.  The
    greedy realisation here starts from a best-informed node and extends
    a Hamiltonian path by repeatedly appending the remaining node whose
    token set has the *smallest symmetric difference* with the chain's
    current endpoint (ties to the smallest id — fully deterministic, no
    RNG draw).  Each edge then carries minimal marginal novelty, so
    per-round progress in new (node, token) pairs is throttled to the
    knowledge gradient along the chain.
    """

    def _order(self, r: int, knowledge: Knowledge) -> List[int]:
        sets: Dict[int, FrozenSet[int]] = {
            v: frozenset(knowledge.get(v, frozenset())) for v in range(self.n)
        }
        remaining = set(range(self.n))
        start = min(remaining, key=lambda v: (-len(sets[v]), v))
        order = [start]
        remaining.discard(start)
        while remaining:
            last = sets[order[-1]]
            nxt = min(remaining, key=lambda v: (len(last ^ sets[v]), v))
            order.append(nxt)
            remaining.discard(nxt)
        return order


def materialize_lower_bound_trace(
    n: int,
    initial: Mapping[int, FrozenSet[int]],
    rounds: int,
    adversary: Optional[_AdaptiveBase] = None,
    seed: SeedLike = 0,
) -> GraphTrace:
    """Freeze an adaptive adversary into an oblivious, certifiable trace.

    Plays ``adversary`` (default: a fresh :class:`HaeuplerKuhnAdversary`)
    for ``rounds`` rounds against a *flooding-knowledge oracle* — after
    each round every node's assumed knowledge absorbs all of its
    neighbours' (the fastest any absorb-only protocol could learn), which
    is exactly the state the adaptive adversary would have reacted to in
    the worst case.  The committed snapshots form a static
    :class:`~repro.graphs.trace.GraphTrace` that any engine tier can run
    and :func:`~repro.graphs.properties.max_interval_connectivity` can
    certify without the adaptive hook.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    adv = adversary if adversary is not None else HaeuplerKuhnAdversary(n, seed=seed)
    if adv.n != n:
        raise ValueError(f"adversary built for n={adv.n}, trace wants n={n}")
    knowledge: Dict[int, FrozenSet[int]] = {
        v: frozenset(initial.get(v, frozenset())) for v in range(n)
    }
    snaps: List[Snapshot] = []
    for r in range(rounds):
        snap = adv.adaptive_snapshot(r, knowledge)
        snaps.append(snap)
        updated: Dict[int, FrozenSet[int]] = {}
        for v in range(n):
            acc = set(knowledge[v])
            for u in snap.adj[v]:
                acc |= knowledge[u]
            updated[v] = frozenset(acc)
        knowledge = updated
    return GraphTrace(snapshots=snaps)
