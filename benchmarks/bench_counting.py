"""Extension X8 — counting (network-size estimation).

KLO's companion primitive, measured three ways on comparable instances:

* **exact, hierarchical** — ids disseminated with Algorithm 2 (the
  paper's saving transfers to counting);
* **exact, flat** — ids flooded with the 1-interval KLO rule;
* **2-approximate, KLO k-committee** — reference [7]'s actual counting
  algorithm (election + verification, doubling k), which needs no
  initial knowledge at all but pays O(n²) rounds.
"""

from __future__ import annotations

from repro.baselines.kcommittee import klo_counting
from repro.core.counting import count_flat, count_hierarchical
from repro.experiments.report import format_records
from repro.experiments.scenarios import hinet_one_scenario


def _counting(sizes=(20, 40, 60), seed=67):
    rows = []
    for n in sizes:
        scenario = hinet_one_scenario(
            n0=n, theta=max(n * 3 // 10, 2), k=1, L=2, seed=seed + n
        )
        hier = count_hierarchical(scenario.trace)
        flat = count_flat(scenario.trace)
        committee = klo_counting(scenario.trace)
        rows.append(
            {
                "n": n,
                "hier_tokens": hier.tokens_sent,
                "flat_tokens": flat.tokens_sent,
                "ratio": flat.tokens_sent / max(hier.tokens_sent, 1),
                "hier_exact": hier.exact,
                "flat_exact": flat.exact,
                "kcommittee_k": committee.k,
                "kcommittee_rounds": committee.rounds_used,
                "kcommittee_tokens": committee.tokens_sent,
            }
        )
    return rows


def test_counting_via_dissemination(benchmark, save_result):
    rows = benchmark.pedantic(_counting, rounds=1, iterations=1)
    text = "X8 — counting by id dissemination: hierarchical vs flat\n\n"
    text += format_records(rows)
    save_result("counting", text)
    print("\n" + text)

    for r in rows:
        assert r["hier_exact"] and r["flat_exact"], r
        assert r["hier_tokens"] < r["flat_tokens"], r
        # k-committee's 2-approximation guarantee: n <= 2k < 4n
        n = int(r["n"])
        assert n <= 2 * int(r["kcommittee_k"]) < 4 * n, r
