"""Deterministic random-number utilities.

Every stochastic component in this library takes an explicit seed or a
:class:`numpy.random.Generator`.  This module centralises the conversion so
that

* passing an ``int`` seed, ``None``, or an existing generator all work, and
* independent sub-streams can be derived reproducibly with :func:`spawn`,
  so that, e.g., a mobility model and a clustering tie-breaker never share
  a stream (sharing would make results depend on call ordering).
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "make_rng", "spawn", "derive_seed"]

#: Anything accepted where a seed is expected.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives OS entropy; an ``int`` or :class:`~numpy.random.SeedSequence`
    seeds a fresh PCG64 stream; an existing generator is returned unchanged
    (callers that need isolation should :func:`spawn` from it instead).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Uses the generator's underlying bit generator ``spawn`` support, which
    is collision-resistant by construction (unlike re-seeding with random
    integers drawn from the parent).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    return [np.random.Generator(bg) for bg in rng.bit_generator.spawn(n)]


def derive_seed(seed: SeedLike, *keys: Union[int, str]) -> int:
    """Derive a stable 63-bit integer seed from ``seed`` and a key path.

    Useful when a component needs to be re-creatable from a plain integer
    (e.g. stored in a results table) rather than from a live generator.
    String keys are hashed with a fixed FNV-1a so the result does not depend
    on ``PYTHONHASHSEED``.
    """
    def _fnv(s: str) -> int:
        h = 0xCBF29CE484222325
        for b in s.encode():
            h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h

    parts: list[int] = []
    if isinstance(seed, np.random.Generator):
        parts.append(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        parts.append(int(seed.generate_state(1, np.uint64)[0]))
    elif seed is None:
        parts.append(int(np.random.SeedSequence().generate_state(1, np.uint64)[0]))
    else:
        parts.append(int(seed))
    for key in keys:
        parts.append(_fnv(key) if isinstance(key, str) else int(key))
    state = np.random.SeedSequence(parts).generate_state(1, np.uint64)[0]
    return int(state) & (2**63 - 1)
