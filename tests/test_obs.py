"""Run telemetry (repro.obs): timeline recording, engine integration,
registry-wide fastpath⇄reference timeline equivalence, serialization,
JSONL export, and the benchmark-regression gate's self-test hook."""

import argparse
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.baselines.flooding import make_flood_all_factory
from repro.core.algorithm2 import make_algorithm2_factory
from repro.experiments.runner import execute
from repro.experiments.scenarios import hinet_one_scenario, one_interval_scenario
from repro.io import timeline_from_dict, timeline_to_dict
from repro.obs import OBS_LEVELS, Profiler, RunTimeline, validate_obs, write_events
from repro.registry import all_specs
from repro.sim.engine import SynchronousEngine


class TestValidateObs:
    def test_levels(self):
        assert OBS_LEVELS == ("off", "timeline", "trace", "record", "profile")
        for level in OBS_LEVELS:
            assert validate_obs(level) == level

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="obs"):
            validate_obs("verbose")

    def test_engine_validates(self):
        with pytest.raises(ValueError, match="obs"):
            SynchronousEngine(obs="bogus")


class TestProfiler:
    def test_sections_accumulate(self):
        prof = Profiler()
        prof.add("send", 0.25)
        prof.add("send", 0.5)
        assert prof.seconds == {"send": 0.75}

    def test_section_context_manager_times(self):
        prof = Profiler()
        with prof.section("outer"):
            with prof.section("inner"):
                pass
        assert prof.seconds["outer"] >= prof.seconds["inner"] >= 0.0


class TestRunTimeline:
    def _timeline(self):
        tl = RunTimeline()
        tl.begin_round()
        tl.record_sends("head", 2, 5)
        tl.end_round(coverage=4, nodes_complete=0)
        tl.begin_round()
        tl.record_sends("head", 1, 3)
        tl.record_sends("gateway", 4, 4)  # first appears in round 1
        tl.end_round(coverage=9, nodes_complete=2)
        return tl

    def test_round_counters(self):
        tl = self._timeline()
        assert tl.rounds == 2
        assert tl.tokens == [5, 7]
        assert tl.messages == [2, 5]
        assert tl.coverage == [4, 9]
        assert tl.nodes_complete == [0, 2]

    def test_late_role_is_zero_backfilled(self):
        tl = self._timeline()
        assert tl.role_messages == {"head": [2, 1], "gateway": [0, 4]}
        assert tl.role_tokens == {"head": [5, 3], "gateway": [0, 4]}

    def test_zero_sends_are_not_recorded(self):
        tl = RunTimeline()
        tl.begin_round()
        tl.record_sends("member", 0, 0)
        tl.end_round(0, 0)
        assert tl.role_messages == {}

    def test_populations_backfilled_and_carried(self):
        tl = RunTimeline()
        tl.begin_round()
        tl.record_populations({"head": 3})
        tl.end_round(0, 0)
        tl.begin_round()
        tl.record_populations({"head": 3, "member": 7})
        tl.end_round(0, 0)
        assert tl.populations == {"head": [3, 3], "member": [0, 7]}

    def test_profile_excluded_from_equality(self):
        a, b = self._timeline(), self._timeline()
        a.profile["send"] = 1.23
        assert a == b

    def test_phases_aggregates_in_blocks(self):
        tl = self._timeline()
        rows = tl.phases(2)
        assert len(rows) == 1
        row = rows[0]
        assert row["rounds"] == "0..1"
        assert row["messages"] == 7 and row["tokens"] == 12
        assert row["coverage_end"] == 9 and row["nodes_complete_end"] == 2
        assert row["head_msgs"] == 3 and row["gateway_msgs"] == 4

    def test_phases_partial_tail(self):
        rows = self._timeline().phases(3)  # 2 rounds, T=3 → one short phase
        assert len(rows) == 1 and rows[0]["rounds"] == "0..1"

    def test_phases_rejects_bad_T(self):
        with pytest.raises(ValueError, match="T"):
            self._timeline().phases(0)

    def test_events_one_per_round(self):
        events = list(self._timeline().events())
        assert [e["round"] for e in events] == [0, 1]
        # prefix-stable encoding: only roles that actually sent appear,
        # so live streaming and post-hoc export produce identical dicts
        assert events[0]["by_role"] == {
            "head": {"messages": 2, "tokens": 5},
        }
        assert "populations" not in events[0]

    def test_round_event_matches_events(self):
        tl = self._timeline()
        assert [tl.round_event(r) for r in range(tl.rounds)] == list(tl.events())


class TestWriteEvents:
    def test_jsonl_layout_and_cross_check(self, tmp_path):
        tl = TestRunTimeline()._timeline()
        path = tmp_path / "events.jsonl"
        lines = write_events(path, tl, run_info={"algorithm": "x"},
                             summary={"tokens_sent": 12})
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == len(rows) == tl.rounds + 2
        assert rows[0]["type"] == "run" and rows[0]["algorithm"] == "x"
        assert rows[-1]["type"] == "summary"
        assert rows[-1]["tokens"] == rows[-1]["tokens_sent"] == 12
        assert sum(r["tokens"] for r in rows if r["type"] == "round") == 12

    def test_profile_lands_in_footer(self, tmp_path):
        tl = RunTimeline()
        tl.begin_round()
        tl.end_round(0, 0)
        tl.profile["send"] = 0.5
        path = tmp_path / "e.jsonl"
        write_events(path, tl)
        footer = json.loads(path.read_text().splitlines()[-1])
        assert footer["profile_ms"] == {"send": 500.0}


def _run_both(scenario, factory, max_rounds, obs="timeline"):
    ref = SynchronousEngine(obs=obs).run(
        scenario.trace, factory, scenario.k, scenario.initial, max_rounds
    )
    fast = SynchronousEngine(engine="fast", obs=obs).run(
        scenario.trace, factory, scenario.k, scenario.initial, max_rounds
    )
    return ref, fast


class TestEngineIntegration:
    def test_timeline_consistent_with_metrics(self):
        scenario = hinet_one_scenario(n0=20, theta=6, k=3, seed=3, verify=False)
        res = SynchronousEngine().run(
            scenario.trace, make_algorithm2_factory(M=scenario.n - 1),
            scenario.k, scenario.initial, scenario.n - 1,
        )
        tl, m = res.timeline, res.metrics
        assert tl.rounds == m.rounds
        assert sum(tl.tokens) == m.tokens_sent
        assert sum(tl.messages) == m.messages_sent
        assert tl.coverage == m.per_round_coverage
        assert tl.tokens == m.per_round_tokens
        for role in ("head", "gateway", "member"):
            assert sum(tl.role_tokens.get(role, [])) == m.role_tokens(role)
            assert sum(tl.role_messages.get(role, [])) == m.role_messages(role)
        # every node complete exactly when the run completes
        assert tl.nodes_complete[m.completion_round - 1] == scenario.n

    def test_populations_recorded_for_clustered_runs(self):
        scenario = hinet_one_scenario(n0=20, theta=6, k=3, seed=3, verify=False)
        ref, fast = _run_both(
            scenario, make_algorithm2_factory(M=scenario.n - 1), scenario.n - 1
        )
        for res in (ref, fast):
            pops = res.timeline.populations
            assert set(pops) == {"head", "gateway", "member"}
            # roles partition the nodes in every round
            for r in range(res.timeline.rounds):
                assert sum(col[r] for col in pops.values()) == scenario.n
        assert ref.timeline == fast.timeline

    def test_obs_off_records_nothing(self):
        scenario = one_interval_scenario(n0=12, k=3, seed=1, verify=False)
        ref, fast = _run_both(scenario, make_flood_all_factory(), 11, obs="off")
        assert ref.timeline is None and fast.timeline is None

    def test_profile_sections_recorded_both_engines(self):
        scenario = one_interval_scenario(n0=12, k=3, seed=1, verify=False)
        ref, fast = _run_both(
            scenario, make_flood_all_factory(), 11, obs="profile"
        )
        for res in (ref, fast):
            prof = res.timeline.profile
            assert {"topology", "send", "receive", "bookkeeping"} <= set(prof)
            assert all(dt >= 0.0 for dt in prof.values())
        assert "deliver" in ref.timeline.profile
        # wall times differ but never break timeline equality
        assert ref.timeline == fast.timeline


def _auto_scenario(spec, seed=5):
    args = argparse.Namespace(scenario="auto", n0=24, theta=7, k=3, alpha=3,
                              L=2, seed=seed)
    return cli._build_scenario(args, spec)


class TestRegistryWideTimelineEquivalence:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_fast_and_reference_timelines_identical(self, spec):
        """Every registered algorithm: identical coverage timelines on a
        seeded scenario, whether the fast path handles it natively or
        falls back to the reference loop."""
        scenario = _auto_scenario(spec)
        overrides = {"seed": 9} if spec.seeded else {}
        ref = execute(spec, scenario, engine="reference", **overrides)
        fast = execute(spec, scenario, engine="fast", **overrides)
        assert ref.result.timeline is not None
        assert fast.result.timeline == ref.result.timeline
        assert fast.result.metrics == ref.result.metrics


class TestTimelineSerialization:
    def test_roundtrip(self):
        tl = TestRunTimeline()._timeline()
        tl.profile["send"] = 0.125
        back = timeline_from_dict(timeline_to_dict(tl))
        assert back == tl
        assert back.profile == tl.profile  # == ignores profile; check it too

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            timeline_from_dict({"format": "something-else", "version": 1})

    def test_rides_through_result_cache(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.registry import get_spec

        spec = get_spec("algorithm2")
        scenario = hinet_one_scenario(n0=16, theta=5, k=3, seed=2, verify=False)
        store = ResultCache(tmp_path)
        fresh = execute(spec, scenario, cache=store)
        replay = execute(spec, scenario, cache=store)
        assert replay.result.timeline == fresh.result.timeline
        assert replay.result.timeline is not fresh.result.timeline  # from disk

    def test_off_and_timeline_records_never_cross(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.registry import get_spec

        spec = get_spec("algorithm2")
        scenario = hinet_one_scenario(n0=16, theta=5, k=3, seed=2, verify=False)
        store = ResultCache(tmp_path)
        execute(spec, scenario, cache=store, obs="off")
        record = execute(spec, scenario, cache=store, obs="timeline")
        assert record.result.timeline is not None


def _load_check_regression():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_regression", module)
    spec.loader.exec_module(module)
    return module


class TestRegressionGate:
    CASE = "algorithm1_full_run_n100_r126"

    def test_passes_on_healthy_engine(self):
        # lenient threshold: the gate must pass on any machine unless the
        # fast path genuinely stopped being faster than the reference
        gate = _load_check_regression()
        assert gate.main(["--threshold", "0.9", "--repeats", "1",
                          "--cases", self.CASE]) == 0

    def test_fails_on_injected_slowdown(self):
        gate = _load_check_regression()
        assert gate.main(["--threshold", "0.25", "--repeats", "1",
                          "--cases", self.CASE,
                          "--inject-slowdown-ms", "300"]) == 1

    def test_fails_on_unknown_case(self):
        gate = _load_check_regression()
        assert gate.main(["--cases", "no-such-case"]) == 1

    def test_obs_overhead_within_budget(self):
        # generous budget: passes anywhere unless trace recording became
        # outright pathological relative to an untraced run
        gate = _load_check_regression()
        assert gate.main(["--repeats", "1", "--obs-budget", "20",
                          "--cases", "obs_overhead_trace_vs_off"]) == 0

    def test_obs_overhead_gate_fails_on_injected_overhead(self):
        gate = _load_check_regression()
        assert gate.main(["--repeats", "1", "--obs-budget", "3.0",
                          "--cases", "obs_overhead_trace_vs_off",
                          "--inject-obs-overhead-ms", "300"]) == 1

    def test_record_overhead_within_budget(self):
        # generous budget: passes anywhere unless obs="record" became
        # outright pathological relative to an unobserved run
        gate = _load_check_regression()
        assert gate.main(["--repeats", "1", "--record-budget", "20",
                          "--cases", "record_overhead_vs_off"]) == 0

    def test_record_overhead_gate_fails_on_injected_overhead(self):
        gate = _load_check_regression()
        assert gate.main(["--repeats", "1", "--record-budget", "3.0",
                          "--cases", "record_overhead_vs_off",
                          "--inject-record-overhead-ms", "300"]) == 1

    def test_stream_overhead_within_budget(self):
        # generous budget: passes anywhere unless attaching the bus became
        # outright pathological relative to a bus-free timeline run
        gate = _load_check_regression()
        assert gate.main(["--repeats", "1", "--stream-budget", "20",
                          "--cases", "stream_overhead_vs_off"]) == 0

    def test_stream_overhead_gate_fails_on_injected_overhead(self):
        gate = _load_check_regression()
        assert gate.main(["--repeats", "1", "--stream-budget", "1.15",
                          "--cases", "stream_overhead_vs_off",
                          "--inject-stream-overhead-ms", "300"]) == 1

    def test_equivalence_failure_emits_divergence_report(self, tmp_path,
                                                         monkeypatch):
        """Under an injected fastpath fault the full-run equivalence case
        fails AND pinpoints the exact round/node in a written report."""
        from repro.sim.fastpath import FAULT_ENV_VAR

        gate = _load_check_regression()
        monkeypatch.setenv(FAULT_ENV_VAR, "3:5:0")
        report = tmp_path / "divergence.txt"
        assert gate.main(["--threshold", "0.9", "--repeats", "1",
                          "--cases", self.CASE,
                          "--divergence-report", str(report)]) == 1
        text = report.read_text()
        assert "DIVERGENCE" in text
        assert "first diverging round: 3" in text
        assert "node 5" in text
