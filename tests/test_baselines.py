"""Tests for the KLO, flooding, k-active and gossip baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flooding import (
    FloodAllNode,
    FloodNewNode,
    make_flood_all_factory,
    make_flood_new_factory,
)
from repro.baselines.gossip import GossipNode, make_gossip_factory
from repro.baselines.kactive import KActiveFloodNode, make_kactive_factory
from repro.baselines.klo import (
    KLOIntervalNode,
    KLOOneIntervalNode,
    make_klo_interval_factory,
    make_klo_one_factory,
)
from repro.core.bounds import klo_interval_phases, required_T
from repro.graphs.generators.interval import t_interval_trace
from repro.graphs.generators.static import complete_graph, path_graph, static_trace
from repro.graphs.generators.worstcase import shuffled_path_trace
from repro.roles import Role
from repro.sim.engine import run
from repro.sim.messages import Message, initial_assignment
from repro.sim.node import RoundContext


def _ctx(r, node=0, neighbors=frozenset({1})):
    return RoundContext(round_index=r, node=node, neighbors=neighbors)


class TestKLOIntervalUnit:
    def test_broadcasts_min_unsent_per_phase(self):
        node = KLOIntervalNode(0, 3, frozenset({1, 2}), T=2, M=2)
        assert node.send(_ctx(0))[0].tokens == frozenset({1})
        assert node.send(_ctx(1))[0].tokens == frozenset({2})
        # new phase: TS cleared, restart from min
        assert node.send(_ctx(2))[0].tokens == frozenset({1})

    def test_finishes_after_M_phases(self):
        node = KLOIntervalNode(0, 1, frozenset({0}), T=2, M=1)
        assert node.send(_ctx(2)) == []
        assert node.finished(_ctx(1))

    def test_validation(self):
        with pytest.raises(ValueError):
            KLOIntervalNode(0, 1, frozenset(), T=0, M=1)


class TestKLOIntervalEndToEnd:
    def test_completes_on_t_interval_trace(self):
        n, k, alpha, L = 24, 4, 2, 2
        T = required_T(k, alpha, L)
        M = klo_interval_phases(n, alpha, L)
        trace = t_interval_trace(n, T, rounds=T * M, churn_p=0.05, seed=6)
        res = run(trace, make_klo_interval_factory(T=T, M=M), k=k,
                  initial=initial_assignment(k, n, mode="spread"),
                  max_rounds=T * M)
        assert res.complete

    def test_comm_bounded_by_table2(self):
        """Measured tokens <= phases * n * k (each node <= k per phase)."""
        n, k, alpha, L = 24, 4, 2, 2
        T = required_T(k, alpha, L)
        M = klo_interval_phases(n, alpha, L)
        trace = t_interval_trace(n, T, rounds=T * M, churn_p=0.05, seed=6)
        res = run(trace, make_klo_interval_factory(T=T, M=M), k=k,
                  initial=initial_assignment(k, n, mode="spread"),
                  max_rounds=T * M)
        assert res.metrics.tokens_sent <= M * n * k


class TestKLOOneInterval:
    def test_completes_on_worstcase_path(self):
        n, k = 20, 3
        trace = shuffled_path_trace(n, rounds=n - 1, seed=2)
        res = run(trace, make_klo_one_factory(M=n - 1), k=k,
                  initial=initial_assignment(k, n, mode="spread"),
                  max_rounds=n - 1)
        assert res.complete

    def test_cost_upper_bound(self):
        n, k = 20, 3
        trace = shuffled_path_trace(n, rounds=n - 1, seed=2)
        res = run(trace, make_klo_one_factory(M=n - 1), k=k,
                  initial=initial_assignment(k, n, mode="spread"),
                  max_rounds=n - 1)
        assert res.metrics.tokens_sent <= (n - 1) * n * k

    def test_unit_stops_at_M(self):
        node = KLOOneIntervalNode(0, 1, frozenset({0}), M=1)
        assert node.send(_ctx(0))[0].tokens == frozenset({0})
        assert node.send(_ctx(1)) == []


class TestFlooding:
    def test_flood_all_matches_bfs_time_on_static_path(self):
        trace = static_trace(path_graph(6), rounds=10)
        res = run(trace, make_flood_all_factory(), k=1,
                  initial={0: frozenset({0})}, max_rounds=10,
                  stop_when_complete=True)
        assert res.metrics.completion_round == 5

    def test_flood_new_works_on_static(self):
        trace = static_trace(path_graph(6), rounds=10)
        res = run(trace, make_flood_new_factory(), k=1,
                  initial={0: frozenset({0})}, max_rounds=10,
                  stop_when_complete=True)
        assert res.complete

    def test_flood_new_cheaper_than_flood_all(self):
        # a path forces many rounds; FloodAll re-broadcasts everything
        # every round while FloodNew sends each token once per node
        trace = static_trace(path_graph(10), rounds=12)
        init = initial_assignment(4, 10, mode="spread")
        all_ = run(trace, make_flood_all_factory(), k=4, initial=init,
                   max_rounds=12, stop_when_complete=True)
        new = run(trace, make_flood_new_factory(), k=4, initial=init,
                  max_rounds=12, stop_when_complete=True)
        assert new.complete and all_.complete
        assert new.metrics.tokens_sent < all_.metrics.tokens_sent

    def test_flood_new_fails_on_missed_connection(self):
        """Failure injection: the epidemic variant loses a token when the
        audience appears after its only broadcast — the structural reason
        dynamic networks need repetition."""
        from repro.graphs.trace import GraphTrace
        from repro.sim.topology import Snapshot

        # round 0: 0-1 (token broadcast once); round 1+: 1 never re-sends to 2
        rounds = [
            [(0, 1)],
            [(0, 1)],   # 2 still isolated while 1's freshness expires
            [(1, 2)],
            [(1, 2)],
        ]
        trace = GraphTrace([Snapshot.from_edges(3, e) for e in rounds])
        res = run(trace, make_flood_new_factory(), k=1,
                  initial={0: frozenset({0})}, max_rounds=4)
        assert not res.complete
        # while FloodAll on the same trace succeeds
        res2 = run(trace, make_flood_all_factory(), k=1,
                   initial={0: frozenset({0})}, max_rounds=4)
        assert res2.complete


class TestKActive:
    def test_forwards_exactly_A_rounds(self):
        node = KActiveFloodNode(0, 1, frozenset({0}), A=2)
        assert node.send(_ctx(0))[0].tokens == frozenset({0})
        assert node.send(_ctx(1))[0].tokens == frozenset({0})
        assert node.send(_ctx(2)) == []

    def test_relearning_does_not_reactivate(self):
        node = KActiveFloodNode(0, 1, frozenset({0}), A=1)
        node.send(_ctx(0))
        node.receive(_ctx(0), [Message.broadcast(1, {0})])  # already known
        assert node.send(_ctx(1)) == []

    def test_larger_A_bridges_what_A1_misses(self):
        from repro.graphs.trace import GraphTrace
        from repro.sim.topology import Snapshot

        rounds = [
            [(0, 1)],
            [(0, 1)],
            [(1, 2)],
        ]
        trace = GraphTrace([Snapshot.from_edges(3, e) for e in rounds])
        small = run(trace, make_kactive_factory(A=1), k=1,
                    initial={0: frozenset({0})}, max_rounds=3)
        big = run(trace, make_kactive_factory(A=3), k=1,
                  initial={0: frozenset({0})}, max_rounds=3)
        assert not small.complete
        assert big.complete

    def test_A_validated(self):
        with pytest.raises(ValueError):
            KActiveFloodNode(0, 1, frozenset(), A=0)


class TestGossip:
    def test_reproducible(self):
        trace = static_trace(complete_graph(12), rounds=60)
        init = initial_assignment(3, 12, mode="spread")
        a = run(trace, make_gossip_factory(seed=5), k=3, initial=init,
                max_rounds=60, stop_when_complete=True)
        b = run(trace, make_gossip_factory(seed=5), k=3, initial=init,
                max_rounds=60, stop_when_complete=True)
        assert a.metrics.tokens_sent == b.metrics.tokens_sent
        assert a.metrics.completion_round == b.metrics.completion_round

    def test_completes_whp_on_complete_graph(self):
        trace = static_trace(complete_graph(16), rounds=300)
        res = run(trace, make_gossip_factory(seed=1), k=2,
                  initial=initial_assignment(2, 16, mode="spread"),
                  max_rounds=300, stop_when_complete=True)
        assert res.complete

    def test_one_mode_sends_single_token(self):
        node = GossipNode(0, 4, frozenset({1, 2, 3}), rng=__import__("numpy").random.default_rng(0), mode="one")
        msgs = node.send(_ctx(0, neighbors=frozenset({1, 2})))
        assert len(msgs) == 1 and len(msgs[0].tokens) == 1

    def test_mode_validated(self):
        import numpy as np
        with pytest.raises(ValueError):
            GossipNode(0, 1, frozenset(), rng=np.random.default_rng(0), mode="pull")

    def test_isolated_node_silent(self):
        import numpy as np
        node = GossipNode(0, 1, frozenset({0}), rng=np.random.default_rng(0))
        assert node.send(_ctx(0, neighbors=frozenset())) == []
