"""Vectorised bitset execution for the token-dissemination algorithm family.

The reference engine (:mod:`repro.sim.engine`) dispatches per-node Python
objects exchanging ``frozenset`` token sets — ideal for clarity and for
arbitrary user algorithms, but the hot loop of every benchmark sweep.
This module re-implements the *fixed* algorithm family of the paper
(Algorithm 1, its Remark-1 stable-heads variant, Algorithm 2, both KLO
baselines, and the two flooding baselines) as vectorised kernels:

* a node's token set is a row of ``uint64`` words (one bit per token), so
  set union is ``|``, difference is ``& ~``, and cardinality is a popcount;
* per-round topology comes from the memoized CSR arrays of
  :meth:`repro.sim.topology.Snapshot.arrays`;
* send/receive for all ``n`` nodes are a handful of numpy array operations
  instead of ``2n`` Python method calls.

**Bit-identical results.**  For supported algorithms the fast path
reproduces the reference engine exactly: the same :class:`RunResult`
outputs, the same :class:`~repro.sim.metrics.Metrics` (token/message
counts, per-role breakdown, per-round series, completion round), the same
:class:`~repro.obs.RunTimeline` telemetry (coverage timeline, per-role
per-round counters, hierarchy populations), the same
:class:`~repro.obs.CausalTrace` first-learn events at ``obs="trace"``
(recorded natively from the bitset diff ``TA & ~known`` with the same
min-sender attribution rule — the fast path does *not* fall back for
causal tracing), the same :class:`~repro.obs.RunRecording` at
``obs="record"`` (per-round knowledge deltas from the bitset diff, roles,
and canonically ordered messages decoded from the send batches — asserted
bit-identical registry-wide in ``tests/test_recorder.py``), the same
monitor :class:`~repro.obs.Violation` streams,
the same drop/loss accounting, and — because every
:class:`~repro.sim.linkmodel.LinkModel` decision is a pure counter-based
hash of ``(seed, round, edge)`` rather than a sequential RNG stream — the
same behaviour under loss, churn, pinpoint faults and ``latency > 1``.
The equivalence suites in ``tests/test_fastpath.py``, ``tests/test_obs.py``,
``tests/test_causal_trace.py`` and ``tests/test_linkmodel.py`` assert this
across algorithms, generators, seeds and scenario families.

**Dispatch.**  Factories built by the ``make_*_factory`` helpers carry a
``factory.fastpath = (kind, params)`` tag.  :func:`try_run` executes the
matching kernel, or returns ``None`` — letting the engine fall back to the
reference path — when the factory is untagged (custom algorithms), when a
:class:`~repro.sim.trace.SimTrace` recording was requested
(``record_trace`` / ``record_knowledge``), or when the network is adaptive
(the adversary hook needs per-node Python state).
``RunResult.algorithms`` is ``None`` on the fast path: there are no
per-node objects to hand back.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from ..obs import CausalTrace, Profiler, RoundView, RunRecorder, RunTimeline
from .engine import RunResult, SynchronousEngine, validate_run_args

# FAULT_ENV_VAR is re-exported for backward compatibility: the hook is now
# the PinpointFault link model (see repro.sim.linkmodel.env_fault).
from .linkmodel import FAULT_ENV_VAR, LinkModel
from .metrics import Metrics, RoleCost
from .topology import SnapshotArrays

__all__ = ["FAULT_ENV_VAR", "supported_kinds", "try_run"]

_U1 = np.uint64(1)

_ROLE_HEAD, _ROLE_GATEWAY, _ROLE_MEMBER = 0, 1, 2
_ROLE_NAMES = ((0, "head"), (1, "gateway"), (2, "member"))
_ROLE_NAME_BY_CODE = {code: name for code, name in _ROLE_NAMES}


# ---------------------------------------------------------------------------
# bit tricks on (m, W) uint64 rows
# ---------------------------------------------------------------------------

def _popcounts(rows: np.ndarray) -> np.ndarray:
    """Per-row popcount of (m, W) uint64 rows."""
    return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)

def _lowest_bit_rows(rows: np.ndarray) -> np.ndarray:
    """One-hot rows isolating each row's lowest set bit (rows must be != 0)."""
    out = np.zeros_like(rows)
    wsel = (rows != 0).argmax(axis=1)
    ar = np.arange(rows.shape[0])
    w = rows[ar, wsel]
    out[ar, wsel] = w & ~(w - _U1)
    return out

def _highest_bit_rows(rows: np.ndarray) -> np.ndarray:
    """One-hot rows isolating each row's highest set bit (rows must be != 0)."""
    out = np.zeros_like(rows)
    wsel = rows.shape[1] - 1 - (rows[:, ::-1] != 0).argmax(axis=1)
    ar = np.arange(rows.shape[0])
    s = rows[ar, wsel].copy()
    s |= s >> _U1
    s |= s >> np.uint64(2)
    s |= s >> np.uint64(4)
    s |= s >> np.uint64(8)
    s |= s >> np.uint64(16)
    s |= s >> np.uint64(32)
    out[ar, wsel] = s ^ (s >> _U1)
    return out

def _rows_to_frozensets(bits: np.ndarray) -> List[FrozenSet[int]]:
    """Decode (n, W) uint64 rows back to per-node frozensets of token ids."""
    n, W = bits.shape
    unpacked = np.unpackbits(
        bits.astype("<u8").view(np.uint8).reshape(n, W * 8),
        axis=1,
        bitorder="little",
    )
    return [frozenset(np.nonzero(row)[0].tolist()) for row in unpacked]


# ---------------------------------------------------------------------------
# per-round send batches
# ---------------------------------------------------------------------------

class _SendBatch:
    """All transmissions of one round, as arrays.

    Senders appear at most once per side (every supported algorithm sends
    at most one message per node per round) and in ascending node order —
    the reference engine's iteration order.
    """

    __slots__ = (
        "bc_senders", "bc_payload", "bc_costs",
        "uc_senders", "uc_dests", "uc_ok", "uc_payload", "uc_costs",
    )

    def __init__(
        self,
        bc_senders: np.ndarray,
        bc_payload: np.ndarray,
        bc_costs: np.ndarray,
        uc_senders: np.ndarray,
        uc_dests: np.ndarray,
        uc_ok: np.ndarray,
        uc_payload: np.ndarray,
        uc_costs: np.ndarray,
    ) -> None:
        self.bc_senders = bc_senders
        self.bc_payload = bc_payload
        self.bc_costs = bc_costs
        self.uc_senders = uc_senders
        self.uc_dests = uc_dests
        self.uc_ok = uc_ok
        self.uc_payload = uc_payload
        self.uc_costs = uc_costs

    @property
    def messages(self) -> int:
        return len(self.bc_senders) + len(self.uc_senders)


_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)


def _broadcast_batch(senders: np.ndarray, payload: np.ndarray, costs: np.ndarray) -> _SendBatch:
    W = payload.shape[1] if payload.ndim == 2 else 1
    empty_rows = np.empty((0, W), dtype=np.uint64)
    return _SendBatch(
        senders, payload, costs,
        _EMPTY_IDS, _EMPTY_IDS, _EMPTY_BOOL, empty_rows, _EMPTY_IDS,
    )


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

class _Kernel:
    """Vectorised state of one algorithm family across all nodes.

    Subclasses implement :meth:`send` (returning a :class:`_SendBatch` or
    ``None`` for a silent round) and :meth:`finished`; the default
    :meth:`receive` ORs every delivered payload row into ``TA``.
    """

    def __init__(self, n: int, k: int, W: int, TA: np.ndarray) -> None:
        self.n = n
        self.k = k
        self.W = W
        self.TA = TA

    # -- engine interface --------------------------------------------------

    def send(self, r: int, arrs: SnapshotArrays) -> Optional[_SendBatch]:
        raise NotImplementedError

    def receive(
        self, r: int, arrs: SnapshotArrays,
        rec: np.ndarray, snd: np.ndarray, payload: np.ndarray,
    ) -> None:
        np.bitwise_or.at(self.TA, rec, payload)

    def finished(self, r: int) -> bool:
        """Whether every node has locally terminated after round ``r``."""
        return False

    # -- shared helpers ----------------------------------------------------

    def _head_arr(self, arrs: SnapshotArrays) -> np.ndarray:
        if arrs.head_of is not None:
            return arrs.head_of
        cached = getattr(self, "_neg1", None)
        if cached is None:
            cached = np.full(self.n, -1, dtype=np.int64)
            self._neg1 = cached
        return cached

    def _member_mask(self, arrs: SnapshotArrays) -> Optional[np.ndarray]:
        return None if arrs.roles is None else arrs.roles == _ROLE_MEMBER


class _Algorithm1Kernel(_Kernel):
    """Algorithm 1 (Fig. 4) and its Remark-1 stable-heads variant."""

    def __init__(self, n, k, W, TA, T: int, M: int, strict: bool, stable: bool = False):
        super().__init__(n, k, W, TA)
        if T < 1 or M < 1:
            raise ValueError(f"T and M must be >= 1, got T={T}, M={M}")
        self.T = T
        self.M = M
        self.strict = strict
        self.stable = stable
        self.TS = np.zeros_like(TA)
        self.TR = np.zeros_like(TA)
        # previous phase's head per node; -1 encodes "None", matching the
        # reference's initial `_phase_head = None`
        self.phase_head = np.full(n, -1, dtype=np.int64)

    def send(self, r: int, arrs: SnapshotArrays) -> Optional[_SendBatch]:
        if r // self.T >= self.M:
            return None
        member = self._member_mask(arrs)
        head_arr = self._head_arr(arrs)

        if r % self.T == 0:
            # phase boundary: members forget TS/TR on head change (plain
            # Algorithm 1 only); heads/gateways clear their per-phase TS
            if member is None:
                self.TS[:] = 0
            else:
                if not self.stable:
                    reset = member & (head_arr != self.phase_head)
                    self.TS[reset] = 0
                    self.TR[reset] = 0
                self.TS[~member] = 0
            self.phase_head[:] = head_arr

        uc_senders = _EMPTY_IDS
        uc_dests = _EMPTY_IDS
        uc_ok = _EMPTY_BOOL
        uc_payload = np.empty((0, self.W), dtype=np.uint64)
        if member is not None and not (self.stable and r >= self.T):
            unknown = self.TA & ~(self.TS | self.TR)
            can = member & (head_arr >= 0) & unknown.any(axis=1)
            uc_senders = np.nonzero(can)[0]
            if uc_senders.size:
                uc_payload = _highest_bit_rows(unknown[uc_senders])
                self.TS[uc_senders] |= uc_payload
                uc_dests = head_arr[uc_senders]
                uc_ok = arrs.head_adjacent[uc_senders]

        unsent = self.TA & ~self.TS
        canb = unsent.any(axis=1)
        if member is not None:
            canb &= ~member
        bc_senders = np.nonzero(canb)[0]
        if bc_senders.size:
            bc_payload = _lowest_bit_rows(unsent[bc_senders])
            self.TS[bc_senders] |= bc_payload
        else:
            bc_payload = np.empty((0, self.W), dtype=np.uint64)

        return _SendBatch(
            bc_senders, bc_payload,
            np.ones(bc_senders.size, dtype=np.int64),
            uc_senders, uc_dests, uc_ok, uc_payload,
            np.ones(uc_senders.size, dtype=np.int64),
        )

    def receive(self, r, arrs, rec, snd, payload):
        member = self._member_mask(arrs)
        if member is None:
            np.bitwise_or.at(self.TA, rec, payload)
            return
        head_arr = self._head_arr(arrs)
        memb = member[rec]
        nonmemb = ~memb
        if nonmemb.any():
            np.bitwise_or.at(self.TA, rec[nonmemb], payload[nonmemb])
        from_head = memb & (head_arr[rec] == snd)
        if from_head.any():
            np.bitwise_or.at(self.TA, rec[from_head], payload[from_head])
            np.bitwise_or.at(self.TR, rec[from_head], payload[from_head])
        if not self.strict:
            overheard = memb & ~from_head
            if overheard.any():
                np.bitwise_or.at(self.TA, rec[overheard], payload[overheard])

    def finished(self, r: int) -> bool:
        return r + 1 >= self.M * self.T


class _Algorithm2Kernel(_Kernel):
    """Algorithm 2 (Fig. 5): full-set uploads on (re-)affiliation, full-set
    head/gateway broadcasts every round."""

    def __init__(self, n, k, W, TA, M: int):
        super().__init__(n, k, W, TA)
        if M < 1:
            raise ValueError(f"M must be >= 1, got {M}")
        self.M = M
        self.prev_head = np.full(n, -1, dtype=np.int64)
        self.seen = np.zeros(n, dtype=bool)

    def send(self, r: int, arrs: SnapshotArrays) -> Optional[_SendBatch]:
        if r >= self.M:
            return None
        member = self._member_mask(arrs)
        head_arr = self._head_arr(arrs)
        has_tokens = self.TA.any(axis=1)

        uc_senders = _EMPTY_IDS
        uc_dests = _EMPTY_IDS
        uc_ok = _EMPTY_BOOL
        uc_payload = np.empty((0, self.W), dtype=np.uint64)
        if member is not None:
            changed = ~self.seen | (head_arr != self.prev_head)
            can = member & changed & (head_arr >= 0) & has_tokens
            uc_senders = np.nonzero(can)[0]
            if uc_senders.size:
                uc_payload = self.TA[uc_senders]
                uc_dests = head_arr[uc_senders]
                uc_ok = arrs.head_adjacent[uc_senders]
        self.seen[:] = True
        self.prev_head[:] = head_arr

        canb = has_tokens
        if member is not None:
            canb = canb & ~member
        bc_senders = np.nonzero(canb)[0]
        bc_payload = self.TA[bc_senders]

        return _SendBatch(
            bc_senders, bc_payload, _popcounts(bc_payload),
            uc_senders, uc_dests, uc_ok, uc_payload, _popcounts(uc_payload),
        )

    def finished(self, r: int) -> bool:
        return r + 1 >= self.M


class _KLOIntervalKernel(_Kernel):
    """KLO token forwarding: min-id unsent token per phase, all nodes."""

    def __init__(self, n, k, W, TA, T: int, M: int):
        super().__init__(n, k, W, TA)
        if T < 1 or M < 1:
            raise ValueError(f"T and M must be >= 1, got T={T}, M={M}")
        self.T = T
        self.M = M
        self.TS = np.zeros_like(TA)

    def send(self, r: int, arrs: SnapshotArrays) -> Optional[_SendBatch]:
        if r // self.T >= self.M:
            return None
        if r % self.T == 0:
            self.TS[:] = 0
        unsent = self.TA & ~self.TS
        senders = np.nonzero(unsent.any(axis=1))[0]
        if senders.size:
            payload = _lowest_bit_rows(unsent[senders])
            self.TS[senders] |= payload
        else:
            payload = np.empty((0, self.W), dtype=np.uint64)
        return _broadcast_batch(senders, payload, np.ones(senders.size, dtype=np.int64))

    def finished(self, r: int) -> bool:
        return r + 1 >= self.M * self.T


class _FullSetBroadcastKernel(_Kernel):
    """Everyone broadcasts their whole token set each round.

    ``M=None`` floods forever (FloodAllNode); otherwise this is the KLO
    1-interval baseline with its ``M``-round budget.
    """

    def __init__(self, n, k, W, TA, M: Optional[int] = None):
        super().__init__(n, k, W, TA)
        if M is not None and M < 1:
            raise ValueError(f"M must be >= 1, got {M}")
        self.M = M

    def send(self, r: int, arrs: SnapshotArrays) -> Optional[_SendBatch]:
        if self.M is not None and r >= self.M:
            return None
        senders = np.nonzero(self.TA.any(axis=1))[0]
        payload = self.TA[senders]
        return _broadcast_batch(senders, payload, _popcounts(payload))

    def finished(self, r: int) -> bool:
        return self.M is not None and r + 1 >= self.M


class _FloodNewKernel(_Kernel):
    """Epidemic flooding: broadcast only tokens first learned last round."""

    def __init__(self, n, k, W, TA):
        super().__init__(n, k, W, TA)
        self.fresh = TA.copy()

    def send(self, r: int, arrs: SnapshotArrays) -> Optional[_SendBatch]:
        senders = np.nonzero(self.fresh.any(axis=1))[0]
        payload = self.fresh[senders]
        self.fresh[senders] = 0
        return _broadcast_batch(senders, payload, _popcounts(payload))

    def receive(self, r, arrs, rec, snd, payload):
        received = np.zeros_like(self.TA)
        np.bitwise_or.at(received, rec, payload)
        novel = received & ~self.TA
        self.TA |= novel
        self.fresh |= novel


_KERNELS = {
    "algorithm1": lambda n, k, W, TA, **p: _Algorithm1Kernel(n, k, W, TA, **p),
    "algorithm1_stable": lambda n, k, W, TA, **p: _Algorithm1Kernel(
        n, k, W, TA, stable=True, **p
    ),
    "algorithm2": lambda n, k, W, TA, **p: _Algorithm2Kernel(n, k, W, TA, **p),
    "klo_interval": lambda n, k, W, TA, **p: _KLOIntervalKernel(n, k, W, TA, **p),
    "klo_one": lambda n, k, W, TA, M: _FullSetBroadcastKernel(n, k, W, TA, M=M),
    "flood_all": lambda n, k, W, TA: _FullSetBroadcastKernel(n, k, W, TA, M=None),
    "flood_new": lambda n, k, W, TA: _FloodNewKernel(n, k, W, TA),
}


def supported_kinds() -> Tuple[str, ...]:
    """The ``factory.fastpath`` kinds this module can execute."""
    return tuple(sorted(_KERNELS))


# ---------------------------------------------------------------------------
# accounting and delivery
# ---------------------------------------------------------------------------

def _account(
    metrics: Metrics,
    batch: _SendBatch,
    arrs: SnapshotArrays,
    timeline: Optional[RunTimeline] = None,
) -> None:
    """Record one round's transmissions exactly as the reference engine does."""
    b = len(batch.bc_senders)
    u = len(batch.uc_senders)
    if b + u == 0:
        return
    tokens = int(batch.bc_costs.sum()) + int(batch.uc_costs.sum())
    metrics.tokens_sent += tokens
    metrics.messages_sent += b + u
    metrics.broadcasts += b
    metrics.unicasts += u
    if metrics.per_round_tokens:
        metrics.per_round_tokens[-1] += tokens
    if u:
        metrics.dropped_unicasts += int((~batch.uc_ok).sum())
    if arrs.roles is None:
        cost = metrics.by_role.setdefault("flat", RoleCost())
        cost.tokens += tokens
        cost.messages += b + u
        if timeline is not None:
            timeline.record_sends("flat", b + u, tokens)
        return
    senders = np.concatenate((batch.bc_senders, batch.uc_senders))
    costs = np.concatenate((batch.bc_costs, batch.uc_costs))
    codes = arrs.roles[senders]
    msg_counts = np.bincount(codes, minlength=3)
    tok_counts = np.bincount(codes, weights=costs, minlength=3)
    for code, name in _ROLE_NAMES:
        if msg_counts[code]:
            cost = metrics.by_role.setdefault(name, RoleCost())
            cost.tokens += int(tok_counts[code])
            cost.messages += int(msg_counts[code])
            if timeline is not None:
                timeline.record_sends(
                    name, int(msg_counts[code]), int(tok_counts[code])
                )


def _deliveries(
    batch: _SendBatch, arrs: SnapshotArrays
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Expand a send batch into flat (receiver, sender, payload-row) arrays."""
    parts = []
    senders = batch.bc_senders
    if senders.size:
        lens = arrs.degrees[senders]
        total = int(lens.sum())
        if total:
            starts = arrs.indptr[senders]
            cum = np.cumsum(lens)
            pos = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - lens), lens)
            parts.append((
                arrs.indices[pos],
                np.repeat(senders, lens),
                np.repeat(batch.bc_payload, lens, axis=0),
            ))
    if batch.uc_senders.size:
        ok = batch.uc_ok
        if ok.any():
            parts.append((
                batch.uc_dests[ok],
                batch.uc_senders[ok],
                batch.uc_payload[ok],
            ))
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


def _filter_batch_alive(batch: _SendBatch, alive: np.ndarray) -> _SendBatch:
    """Drop transmissions whose sender crashed — crashed nodes never send."""
    bk = alive[batch.bc_senders]
    uk = alive[batch.uc_senders]
    if bk.all() and uk.all():
        return batch
    return _SendBatch(
        batch.bc_senders[bk], batch.bc_payload[bk], batch.bc_costs[bk],
        batch.uc_senders[uk], batch.uc_dests[uk], batch.uc_ok[uk],
        batch.uc_payload[uk], batch.uc_costs[uk],
    )


def _apply_link_flat(
    flat: Tuple[np.ndarray, np.ndarray, np.ndarray],
    r: int,
    link: LinkModel,
    alive: np.ndarray,
    metrics: Metrics,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Link transform over flat (receiver, sender, payload) deliveries.

    Deliveries to crashed receivers are discarded silently (the reference
    engine never offers a crashed node as a candidate); the link's deliver
    mask then suppresses some of the survivors, each billed as a loss.
    The counter-based link RNG keys every decision by (round, edge), so
    masking the vectorised candidate set here is bit-identical to the
    reference engine's per-edge ``delivers`` calls.
    """
    rec, snd, payload = flat
    live = alive[rec]
    if not live.all():
        if not live.any():
            return None
        rec, snd, payload = rec[live], snd[live], payload[live]
    mask = link.deliver_mask(r, snd, rec)
    if mask is not None:
        lost = int(mask.size - int(mask.sum()))
        if lost:
            metrics.record_loss(lost)
            if lost == mask.size:
                return None
            rec, snd, payload = rec[mask], snd[mask], payload[mask]
    return rec, snd, payload


# ---------------------------------------------------------------------------
# causal tracing
# ---------------------------------------------------------------------------

def _row_tokens(row: np.ndarray) -> List[int]:
    """Decode one uint64 bitset row to its sorted token ids."""
    out: List[int] = []
    for w in range(row.shape[0]):
        word = int(row[w])
        base = w << 6
        while word:
            low = word & -word
            out.append(base + low.bit_length() - 1)
            word ^= low
    return out


def _rows_tokens(rows: np.ndarray) -> List[List[int]]:
    """Decode an (m, words) uint64 bitset matrix to per-row sorted token
    lists in one vectorised pass (one ``unpackbits`` + one ``nonzero``
    instead of m Python word walks — the recording hot path decodes
    every message payload of every round)."""
    m = rows.shape[0]
    out: List[List[int]] = [[] for _ in range(m)]
    if m == 0:
        return out
    bits = np.unpackbits(
        np.ascontiguousarray(rows, dtype="<u8").view(np.uint8),
        axis=1, bitorder="little",
    )
    for i, t in zip(*(ix.tolist() for ix in np.nonzero(bits))):
        out[i].append(t)
    return out


def _record_causal_round(
    causal: CausalTrace,
    r: int,
    roles: Optional[np.ndarray],
    known: np.ndarray,
    TA: np.ndarray,
    rec: Optional[np.ndarray],
    snd: Optional[np.ndarray],
    payload: Optional[np.ndarray],
) -> None:
    """Record this round's first-learn events from the bitset diff.

    Mirrors the reference engine's canonical attribution rule
    (:meth:`repro.sim.engine.ActiveRun._record_causal`): for each token a
    node gained this round, the sender is the minimum sender id among the
    round's deliveries to that node whose payload carried the token,
    falling back to the minimum deliverer (then −1); the sender's role is
    read from this round's role codes.  Min-based on both paths, so the
    event maps are bit-identical.
    """
    new = TA & ~known
    changed = np.nonzero(new.any(axis=1))[0]
    for v in changed:
        v = int(v)
        if rec is not None:
            idx = np.nonzero(rec == v)[0]
        else:
            idx = _EMPTY_IDS
        if idx.size:
            senders_v = snd[idx]
            fallback = int(senders_v.min())
        else:
            senders_v = _EMPTY_IDS
            fallback = -1
        for t in _row_tokens(new[v]):
            if idx.size:
                bit = _U1 << np.uint64(t & 63)
                carrying = senders_v[(payload[idx, t >> 6] & bit) != 0]
                sender = int(carrying.min()) if carrying.size else fallback
            else:
                sender = fallback
            if sender >= 0 and roles is not None:
                role = _ROLE_NAME_BY_CODE[int(roles[sender])]
            else:
                role = "flat"
            causal.record_learn(v, t, r, sender, role)
    known |= new


# ---------------------------------------------------------------------------
# the fast engine loop
# ---------------------------------------------------------------------------

def try_run(
    engine: SynchronousEngine,
    network,
    factory,
    k: int,
    initial: Mapping[int, FrozenSet[int]],
    max_rounds: int,
    stop_when_complete: bool = False,
    stop_when_finished: bool = True,
    monitors=None,
) -> Optional[RunResult]:
    """Execute a run on the fast path, or return ``None`` if unsupported.

    Supported: factories tagged with a known ``factory.fastpath`` kind, on
    non-adaptive networks, without ``SimTrace`` recording.  Link models
    (loss/churn/pinpoint faults), latency, ``obs="trace"`` causal tracing,
    and runtime monitors are fully supported (see module docstring).
    ``None`` is only ever returned *before* the first round executes, so
    monitor state is untouched when the engine falls back to the reference
    path.
    """
    spec = getattr(factory, "fastpath", None)
    if spec is None:
        return None
    kind, params = spec
    make_kernel = _KERNELS.get(kind)
    if make_kernel is None:
        return None
    if engine.record_trace or engine.record_knowledge:
        return None
    if getattr(network, "adaptive_snapshot", None) is not None:
        return None

    n = network.n
    validate_run_args(n, k, initial, max_rounds)
    W = max(1, (k + 63) // 64)
    TA = np.zeros((n, W), dtype=np.uint64)
    for node, toks in initial.items():
        for t in toks:
            TA[node, t >> 6] |= _U1 << np.uint64(t & 63)
    kernel = make_kernel(n, k, W, TA, **params)

    metrics = Metrics()
    timeline = RunTimeline() if engine.obs != "off" else None
    prof = Profiler() if engine.obs == "profile" else None
    causal: Optional[CausalTrace] = None
    known: Optional[np.ndarray] = None
    if engine.obs == "trace":
        causal = CausalTrace(n=n, k=k)
        for node in range(n):
            for t in _row_tokens(TA[node]):
                causal.record_origin(node, t)
        known = TA.copy()
    recorder: Optional[RunRecorder] = None
    rec_known: Optional[np.ndarray] = None
    if engine.obs == "record":
        recorder = RunRecorder(
            n, k, {v: frozenset(_row_tokens(TA[v])) for v in range(n)}
        )
        rec_known = TA.copy()
    monitors = list(monitors) if monitors else []
    stream = getattr(engine, "stream", None)
    link = engine.link_for("fast")
    alive: Optional[np.ndarray] = None
    if link is not None:
        alive = np.ones(n, dtype=bool)
    latency = engine.latency
    in_flight: Dict[int, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
    executed = 0

    for r in range(max_rounds):
        t0 = time.perf_counter() if prof is not None else 0.0
        snap = network.snapshot(r)
        if snap.n != n:
            raise ValueError(
                f"snapshot for round {r} has {snap.n} nodes, expected {n}"
            )
        arrs = snap.arrays()
        if prof is not None:
            prof.add("topology", time.perf_counter() - t0)
        metrics.begin_round()
        if timeline is not None:
            timeline.begin_round()
            if arrs.roles is not None:
                pops = np.bincount(arrs.roles, minlength=3)
                timeline.record_populations({
                    name: int(pops[code]) for code, name in _ROLE_NAMES
                })

        if recorder is not None:
            recorder.begin_round(snap)

        # --- crash stage (before sends: crashed nodes never act in r) ----
        newly_crashed: Tuple[int, ...] = ()
        crash_tokens = 0
        lost_before = metrics.lost_deliveries
        if link is not None:
            crashed = link.crashes(r, alive)
            if len(crashed):
                newly_crashed = tuple(int(x) for x in crashed)
                alive[crashed] = False
                crash_tokens = int(np.bitwise_count(kernel.TA[crashed]).sum())
                kernel.TA[crashed] = 0
                metrics.record_crashes(len(newly_crashed))

        if prof is not None:
            t0 = time.perf_counter()
        batch = kernel.send(r, arrs)
        if batch is not None and alive is not None:
            batch = _filter_batch_alive(batch, alive)
        if batch is not None and batch.messages:
            _account(metrics, batch, arrs, timeline)
            if recorder is not None:
                bc_tokens = _rows_tokens(batch.bc_payload)
                for i in range(len(batch.bc_senders)):
                    cost = int(batch.bc_costs[i])
                    if cost:
                        recorder.record_send(
                            int(batch.bc_senders[i]), "b", None,
                            bc_tokens[i], cost,
                        )
                uc_tokens = _rows_tokens(batch.uc_payload)
                for i in range(len(batch.uc_senders)):
                    cost = int(batch.uc_costs[i])
                    if cost:
                        recorder.record_send(
                            int(batch.uc_senders[i]), "u",
                            int(batch.uc_dests[i]),
                            uc_tokens[i], cost,
                        )
            flat = _deliveries(batch, arrs)
            if flat is not None and link is not None:
                flat = _apply_link_flat(flat, r, link, alive, metrics)
            if flat is not None:
                in_flight.setdefault(r + latency - 1, []).append(flat)

        if prof is not None:
            now = time.perf_counter()
            prof.add("send", now - t0)
            t0 = now
        pending = in_flight.pop(r, None)
        rec = snd = payload = None
        if pending:
            if len(pending) == 1:
                rec, snd, payload = pending[0]
            else:
                rec = np.concatenate([p[0] for p in pending])
                snd = np.concatenate([p[1] for p in pending])
                payload = np.concatenate([p[2] for p in pending])
            if alive is not None and latency > 1:
                # receivers may have crashed between transmission and landing
                live = alive[rec]
                if not live.all():
                    rec, snd, payload = rec[live], snd[live], payload[live]
            if rec.size:
                kernel.receive(r, arrs, rec, snd, payload)
            else:
                rec = snd = payload = None

        if prof is not None:
            now = time.perf_counter()
            prof.add("receive", now - t0)
            t0 = now
        if link is not None:
            # pinpoint perturbations (PinpointFault / FAULT_ENV_VAR): XOR
            # always changes state, so divergence at exactly this round/node
            for fv, ft in link.faults(r):
                if alive is None or alive[fv]:
                    kernel.TA[fv, ft >> 6] ^= _U1 << np.uint64(ft & 63)
        if causal is not None:
            _record_causal_round(
                causal, r, arrs.roles, known, kernel.TA, rec, snd, payload
            )
        if recorder is not None:
            new = kernel.TA & ~rec_known
            dropped = rec_known & ~kernel.TA
            new_idx = np.nonzero(new.any(axis=1))[0]
            gained = list(zip(new_idx.tolist(), _rows_tokens(new[new_idx])))
            lost_idx = np.nonzero(dropped.any(axis=1))[0]
            lost = list(
                zip(lost_idx.tolist(), _rows_tokens(dropped[lost_idx]))
            )
            recorder.end_round(gained, lost)
            rec_known[:] = kernel.TA
        per_node = np.bitwise_count(kernel.TA).sum(axis=1, dtype=np.int64)
        coverage = int(per_node.sum())
        nodes_complete = int((per_node == k).sum())
        metrics.end_round(coverage)
        if timeline is not None:
            timeline.end_round(coverage, nodes_complete)
            if stream is not None:
                stream.on_round(timeline)
        if monitors:
            faults_info = None
            if link is not None:
                faults_info = {
                    "crashed": newly_crashed,
                    "crash_tokens": crash_tokens,
                    "lost": metrics.lost_deliveries - lost_before,
                }
            view = RoundView(
                round_index=r,
                snap=snap,
                coverage=coverage,
                nodes_complete=nodes_complete,
                per_node=per_node.tolist(),
                n=n,
                k=k,
                faults=faults_info,
                tokens_sent=metrics.tokens_sent,
                messages_sent=metrics.messages_sent,
            )
            for monitor in monitors:
                before = len(monitor.violations) if stream is not None else 0
                monitor.observe(view)
                if stream is not None:
                    for violation in monitor.violations[before:]:
                        stream.alert(violation)
        executed = r + 1
        if prof is not None:
            prof.add("bookkeeping", time.perf_counter() - t0)
        alive_n = n if alive is None else int(alive.sum())
        if coverage == alive_n * k and (alive is None or alive_n > 0):
            metrics.mark_complete()
            if stop_when_complete:
                break
        if stop_when_finished and not in_flight and kernel.finished(r):
            break

    if timeline is not None and prof is not None:
        timeline.profile.update(prof.seconds)
    token_sets = _rows_to_frozensets(kernel.TA)
    outputs = {v: token_sets[v] for v in range(n)}
    if alive is None:
        complete = all(len(t) == k for t in outputs.values())
    else:
        survivors = np.nonzero(alive)[0]
        complete = bool(survivors.size) and all(
            len(outputs[int(v)]) == k for v in survivors
        )
    violations = None
    if monitors:
        for monitor in monitors:
            monitor.finish(executed, complete)
        violations = [v for m in monitors for v in m.violations]
    return RunResult(
        n=n,
        k=k,
        metrics=metrics,
        outputs=outputs,
        complete=complete,
        trace=None,
        timeline=timeline,
        causal_trace=causal,
        recording=recorder.finish() if recorder is not None else None,
        violations=violations,
        algorithms=None,
    )
