"""Simulation field geometry for mobility models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.rng import SeedLike, make_rng

__all__ = ["Field"]


@dataclass(frozen=True)
class Field:
    """A rectangular deployment area ``[0, width] × [0, height]``.

    All mobility models place nodes inside a field; connectivity models
    (unit disk) measure distances in its coordinates.
    """

    width: float = 1000.0
    height: float = 1000.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"field dimensions must be positive, got {self.width}×{self.height}"
            )

    @property
    def diagonal(self) -> float:
        """Length of the field diagonal — the maximum possible node distance."""
        return float(np.hypot(self.width, self.height))

    def uniform_positions(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """``(n, 2)`` array of i.i.d. uniform positions inside the field."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = make_rng(seed)
        pts = rng.random((n, 2))
        pts[:, 0] *= self.width
        pts[:, 1] *= self.height
        return pts

    def clip(self, positions: np.ndarray) -> np.ndarray:
        """Clamp positions into the field (used defensively after updates)."""
        out = np.array(positions, dtype=float, copy=True)
        out[:, 0] = np.clip(out[:, 0], 0.0, self.width)
        out[:, 1] = np.clip(out[:, 1], 0.0, self.height)
        return out

    def contains(self, positions: np.ndarray) -> bool:
        """Whether every position lies inside the field."""
        p = np.asarray(positions, dtype=float)
        return bool(
            np.all(p[:, 0] >= 0)
            and np.all(p[:, 0] <= self.width)
            and np.all(p[:, 1] >= 0)
            and np.all(p[:, 1] <= self.height)
        )
