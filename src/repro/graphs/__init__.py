"""Dynamic-graph models, traces, property checkers, and scenario generators.

* :class:`~repro.graphs.trace.GraphTrace` — concrete per-round snapshots
  (what the engine executes on).
* :class:`~repro.graphs.tvg.TVG` / :class:`~repro.graphs.ctvg.CTVG` — the
  paper's formal models (Definition 1) as views over a trace.
* :mod:`repro.graphs.properties` — machine-checkable Definitions 2–8 plus
  KLO T-interval connectivity.
* :mod:`repro.graphs.generators` — verified scenario constructors.
"""

from .adversary import KnowledgeClusteringAdversary, QuarantineAdversary
from .ctvg import CTVG
from .dynamic_diameter import backbone_dynamic_diameter, dynamic_diameter, flood_times
from .properties import (
    cluster_stable,
    definition_report,
    head_connected,
    head_connectivity_witness,
    head_hop_distance,
    head_set_stable,
    hierarchy_stable,
    is_T_interval_connected,
    is_T_L_head_connected,
    is_hinet,
    max_block_stable_hierarchy,
    max_interval_connectivity,
    realized_hop_bound,
    windows_of,
)
from .trace import GraphTrace
from .tvg import TVG

__all__ = [
    "CTVG",
    "GraphTrace",
    "KnowledgeClusteringAdversary",
    "QuarantineAdversary",
    "TVG",
    "backbone_dynamic_diameter",
    "cluster_stable",
    "definition_report",
    "dynamic_diameter",
    "flood_times",
    "head_connected",
    "head_connectivity_witness",
    "head_hop_distance",
    "head_set_stable",
    "hierarchy_stable",
    "is_T_L_head_connected",
    "is_T_interval_connected",
    "is_hinet",
    "max_block_stable_hierarchy",
    "max_interval_connectivity",
    "realized_hop_bound",
    "windows_of",
]
